//! The disk driver: request scheduling, scatter/gather coalescing and the
//! simulated clock.
//!
//! The paper's testbed driver (taken from NetBSD) "supports scatter/gather
//! I/O and uses a C-LOOK scheduling algorithm [Worthington94]". The driver
//! here does the same: a batch of block requests is ordered by the chosen
//! scheduler, physically adjacent requests of the same direction are merged
//! into a single disk request, and the batch is serviced back-to-back.
//!
//! The driver also owns the simulated clock. File systems charge CPU time
//! to it (via [`Driver::advance`]) and I/O time flows through the disk's
//! completion times, so `driver.now()` is always "how long has this
//! experiment taken so far".

use crate::disk::Disk;
use crate::stats::DiskStats;
use crate::time::{SimDuration, SimTime};
use crate::SECTOR_SIZE;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::{obj, AttrDelta, Ctr, Obs, Sig, SpanCtx};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

/// Request ordering policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// First-come, first-served.
    Fcfs,
    /// Circular LOOK: service ascending from the arm position, wrap once.
    /// What the paper's testbed used.
    #[default]
    CLook,
    /// Shortest seek time first (by cylinder distance).
    Sstf,
}

/// Driver configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverConfig {
    /// Scheduling policy for batches.
    pub scheduler: Scheduler,
}

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDir {
    /// Device-to-host.
    Read,
    /// Host-to-device.
    Write,
}

/// One block-aligned request in a batch.
#[derive(Debug, Clone)]
pub struct IoReq {
    /// Starting sector.
    pub lba: u64,
    /// Direction.
    pub dir: IoDir,
    /// Payload for writes; capacity hint (`len` bytes to read) for reads.
    pub data: Vec<u8>,
}

impl IoReq {
    /// A write request.
    pub fn write(lba: u64, data: Vec<u8>) -> Self {
        IoReq { lba, dir: IoDir::Write, data }
    }

    /// A read request for `len` bytes.
    pub fn read(lba: u64, len: usize) -> Self {
        IoReq { lba, dir: IoDir::Read, data: vec![0u8; len] }
    }
}

/// Driver-level statistics (above the disk's own counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Requests handed to the driver before coalescing.
    pub logical_requests: u64,
    /// Requests issued to the disk after coalescing.
    pub physical_requests: u64,
    /// Logical requests eliminated by scatter/gather merging.
    pub coalesced: u64,
    /// Batches submitted.
    pub batches: u64,
}

impl ToJson for DriverStats {
    fn to_json(&self) -> Json {
        obj![
            ("logical_requests", self.logical_requests.to_json()),
            ("physical_requests", self.physical_requests.to_json()),
            ("coalesced", self.coalesced.to_json()),
            ("batches", self.batches.to_json()),
        ]
    }
}

/// One queued submission: the requests, whether they form a schedulable
/// batch, the submitter's virtual time and open span, and the channel
/// the completed requests travel back on.
struct Submission {
    reqs: Vec<IoReq>,
    batch: bool,
    /// Submitter's virtual clock at submit; the disk starts service at
    /// the later of this and its last completion.
    stamp: u64,
    /// Submitter's open span, adopted by the worker so trace events and
    /// attribution stay causally correct.
    ctx: SpanCtx,
    reply: mpsc::Sender<Reply>,
}

/// What the worker sends back when a submission completes.
struct Reply {
    reqs: Vec<IoReq>,
    done_ns: u64,
    attr: AttrDelta,
}

/// State shared between driver handles and the worker thread.
struct Shared {
    disk: Mutex<Disk>,
    queue: Mutex<VecDeque<Submission>>,
    cv: Condvar,
    stats: Mutex<DriverStats>,
    config: DriverConfig,
    obs: Arc<Obs>,
    shutdown: AtomicBool,
}

/// The driver: disk + scheduler + simulated clock, fronted by a request
/// queue serviced by one worker thread.
///
/// The worker owns the seek model: it pops submissions in FIFO order,
/// schedules and coalesces each batch against the current arm position,
/// and services it on the (mutex-protected) disk. Submitters enqueue and
/// block until their submission completes, so the single-threaded call
/// pattern behaves exactly as a direct call — while concurrent client
/// threads genuinely interleave at the queue, each running its own
/// virtual timeline (see [`Driver::now`]) with the disk serializing them
/// through its last-completion time.
pub struct Driver {
    shared: Arc<Shared>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Driver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Driver").finish_non_exhaustive()
    }
}

impl Driver {
    /// Wrap a disk with the given configuration; the clock starts at
    /// zero. Spawns the worker thread that services the request queue.
    pub fn new(disk: Disk, config: DriverConfig) -> Self {
        let obs = disk.obs();
        let shared = Arc::new(Shared {
            disk: Mutex::new(disk),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stats: Mutex::new(DriverStats::default()),
            config,
            obs,
            shutdown: AtomicBool::new(false),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cffs-driver".into())
                .spawn(move || worker_loop(&shared))
                .expect("spawn driver worker")
        };
        Driver { shared, worker: Some(worker) }
    }

    /// The calling thread's current simulated time. Each client thread
    /// runs its own virtual clock (advanced by its CPU charges and I/O
    /// completions); a thread that has not run anything yet reads the
    /// cross-thread high-water mark, so elapsed time for a parallel run
    /// is `max` over threads, not the sum.
    pub fn now(&self) -> SimTime {
        SimTime(self.shared.obs.clock_ns())
    }

    /// Advance the calling thread's clock by `d` (CPU work, think time).
    pub fn advance(&self, d: SimDuration) {
        self.shared
            .obs
            .set_clock_ns(self.shared.obs.clock_ns() + d.as_nanos());
    }

    /// The shared observability handle (owned by the disk).
    pub fn obs(&self) -> Arc<Obs> {
        Arc::clone(&self.shared.obs)
    }

    /// Run `f` on the underlying disk (raw access, image cloning).
    pub fn with_disk<R>(&self, f: impl FnOnce(&Disk) -> R) -> R {
        f(&self.shared.obs.lock_timed(&self.shared.disk, Ctr::LockWaitNsDriver))
    }

    /// Run `f` on the underlying disk mutably (raw writes, cache flush).
    pub fn with_disk_mut<R>(&self, f: impl FnOnce(&mut Disk) -> R) -> R {
        f(&mut self.shared.obs.lock_timed(&self.shared.disk, Ctr::LockWaitNsDriver))
    }

    /// Take the disk back (e.g. to remount a file system on it). Shuts
    /// the worker down first; the queue must be drained (no submitter
    /// may be blocked in-flight).
    pub fn into_disk(mut self) -> Disk {
        self.stop_worker();
        let shared = Arc::clone(&self.shared);
        drop(self);
        let shared = Arc::try_unwrap(shared)
            .ok()
            .expect("driver shared state still referenced at into_disk");
        shared.disk.into_inner().expect("disk lock poisoned")
    }

    fn stop_worker(&mut self) {
        if let Some(h) = self.worker.take() {
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.cv.notify_all();
            let _ = h.join();
        }
    }

    /// Disk-level statistics.
    pub fn disk_stats(&self) -> DiskStats {
        self.with_disk(|d| d.stats())
    }

    /// Driver-level statistics.
    pub fn stats(&self) -> DriverStats {
        *self.shared.stats.lock().expect("driver stats poisoned")
    }

    /// Reset both driver and disk statistics.
    pub fn reset_stats(&self) {
        *self.shared.stats.lock().expect("driver stats poisoned") = DriverStats::default();
        self.with_disk_mut(|d| d.reset_stats());
    }

    /// Synchronously read `buf.len()` bytes at `lba`, advancing the
    /// calling thread's clock to the request's completion.
    pub fn read(&self, lba: u64, buf: &mut [u8]) {
        let done = self.submit(vec![IoReq::read(lba, buf.len())], false);
        buf.copy_from_slice(&done[0].data);
    }

    /// Synchronously write at `lba`, advancing the calling thread's
    /// clock to the request's completion.
    pub fn write(&self, lba: u64, buf: &[u8]) {
        self.submit(vec![IoReq::write(lba, buf.to_vec())], false);
    }

    /// Submit a batch: the worker schedules it, coalesces physically
    /// adjacent same-direction requests into scatter/gather transfers,
    /// and services them all. Read payloads are filled in place; the
    /// batch is returned in its (scheduled) service order. Blocks until
    /// the batch completes.
    pub fn submit_batch(&self, reqs: Vec<IoReq>) -> Vec<IoReq> {
        if reqs.is_empty() {
            return reqs;
        }
        self.submit(reqs, true)
    }

    /// Enqueue one submission and block on its completion, then fold the
    /// worker's attribution back into the calling thread's open span and
    /// advance this thread's clock to the completion time.
    fn submit(&self, reqs: Vec<IoReq>, batch: bool) -> Vec<IoReq> {
        let obs = &self.shared.obs;
        {
            let mut stats = self.shared.stats.lock().expect("driver stats poisoned");
            stats.logical_requests += reqs.len() as u64;
            if batch {
                stats.batches += 1;
            }
        }
        obs.bump(Ctr::DriverQueueSubmit);
        obs.add(Ctr::DriverLogicalRequests, reqs.len() as u64);
        if batch {
            obs.bump(Ctr::DriverBatches);
            obs.histos().driver_batch_reqs.record(reqs.len() as u64);
            obs.signal_sample(Sig::QueueDepth, reqs.len() as f64);
        }
        let (tx, rx) = mpsc::channel();
        let sub = Submission {
            reqs,
            batch,
            stamp: obs.clock_ns(),
            ctx: obs.span_ctx(),
            reply: tx,
        };
        obs.queue_depth_inc();
        obs.lock_timed(&self.shared.queue, Ctr::LockWaitNsDriver).push_back(sub);
        self.shared.cv.notify_all();
        let reply = rx.recv().expect("driver worker died");
        obs.set_clock_ns(reply.done_ns);
        obs.fold_attr(reply.attr);
        reply.reqs
    }
}

impl Drop for Driver {
    fn drop(&mut self) {
        self.stop_worker();
    }
}

/// The worker: pop submissions FIFO, schedule + coalesce + service each
/// on the disk, stamp trace events with the submitter's adopted span,
/// and ship the completed requests (plus attribution) back.
fn worker_loop(shared: &Shared) {
    loop {
        let sub = {
            let mut q = shared.queue.lock().expect("driver queue poisoned");
            loop {
                if let Some(s) = q.pop_front() {
                    shared.obs.queue_depth_dec();
                    break s;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.cv.wait(q).expect("driver queue poisoned");
            }
        };
        let Submission { mut reqs, batch, stamp, ctx, reply } = sub;
        let mut disk = shared.obs.lock_timed(&shared.disk, Ctr::LockWaitNsDriver);
        // Adopt the submitter's span so the disk's trace events carry
        // its id and disk-request attribution accumulates on its behalf.
        shared.obs.adopt_span(ctx);
        if batch {
            order(shared.config.scheduler, &disk, &mut reqs);
        }
        // Coalesce adjacent same-direction runs: (lba, dir, [(req idx, len)]).
        type Merged = Vec<(u64, IoDir, Vec<(usize, usize)>)>;
        let mut merged: Merged = Vec::new();
        let mut spans: Vec<IoReq> = Vec::new();
        for req in reqs {
            match merged.last_mut() {
                Some((lba, dir, parts))
                    if *dir == req.dir
                        && *lba + parts.iter().map(|p| p.1 as u64 / SECTOR_SIZE as u64).sum::<u64>()
                            == req.lba =>
                {
                    parts.push((spans.len(), req.data.len()));
                }
                _ => {
                    merged.push((req.lba, req.dir, vec![(spans.len(), req.data.len())]));
                }
            }
            spans.push(req);
        }

        // Service starts at the submitter's virtual time; the disk's
        // last-completion time serializes overlapping submissions.
        let mut now = SimTime(stamp);
        for (lba, dir, parts) in merged {
            {
                let mut stats = shared.stats.lock().expect("driver stats poisoned");
                stats.physical_requests += 1;
                stats.coalesced += parts.len() as u64 - 1;
            }
            shared.obs.bump(Ctr::DriverPhysicalRequests);
            shared.obs.add(Ctr::DriverSgSegments, parts.len() as u64);
            shared.obs.add(Ctr::DriverCoalesced, parts.len() as u64 - 1);
            let total: usize = parts.iter().map(|p| p.1).sum();
            match dir {
                IoDir::Write => {
                    let mut buf = Vec::with_capacity(total);
                    for &(idx, _) in &parts {
                        buf.extend_from_slice(&spans[idx].data);
                    }
                    now = disk.write(now, lba, &buf);
                }
                IoDir::Read => {
                    let mut buf = vec![0u8; total];
                    now = disk.read(now, lba, &mut buf);
                    let mut off = 0;
                    for &(idx, len) in &parts {
                        spans[idx].data.copy_from_slice(&buf[off..off + len]);
                        off += len;
                    }
                }
            }
        }
        let attr = shared.obs.end_adopt();
        drop(disk);
        // Keep the cross-thread high-water mark current even if the
        // submitter vanished (its clock update happens on receipt).
        shared.obs.set_clock_ns(now.as_nanos());
        let _ = reply.send(Reply { reqs: spans, done_ns: now.as_nanos(), attr });
    }
}

/// Order a batch for service (worker-side: needs the live arm position).
fn order(sched: Scheduler, disk: &Disk, reqs: &mut Vec<IoReq>) {
    match sched {
        Scheduler::Fcfs => {}
        Scheduler::CLook => {
            reqs.sort_by_key(|r| r.lba);
            // Find the first request at or beyond the arm and rotate the
            // ascending order to start there (one sweep, then wrap).
            let arm = disk.arm_cylinder();
            let split = reqs
                .iter()
                .position(|r| disk.model().geometry.lba_to_chs(r.lba).cylinder >= arm)
                .unwrap_or(0);
            reqs.rotate_left(split);
        }
        Scheduler::Sstf => {
            // Greedy nearest-cylinder-first from the current arm position.
            let geom = &disk.model().geometry;
            let mut cur = disk.arm_cylinder();
            let mut rest: Vec<IoReq> = std::mem::take(reqs);
            while !rest.is_empty() {
                let (i, _) = rest
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| geom.lba_to_chs(r.lba).cylinder.abs_diff(cur))
                    .expect("nonempty");
                let r = rest.swap_remove(i);
                cur = geom.lba_to_chs(r.lba).cylinder;
                reqs.push(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn driver(sched: Scheduler) -> Driver {
        Driver::new(Disk::new(models::seagate_st31200()), DriverConfig { scheduler: sched })
    }

    #[test]
    fn read_write_round_trip_through_driver() {
        let d = driver(Scheduler::CLook);
        let data = vec![0x5Au8; 4096];
        d.write(800, &data);
        let mut back = vec![0u8; 4096];
        d.read(800, &mut back);
        assert_eq!(back, data);
        assert!(d.now() > SimTime::ZERO);
    }

    #[test]
    fn batch_coalesces_adjacent_writes() {
        let d = driver(Scheduler::CLook);
        // Four adjacent 4 KB writes (a 16 KB group flush) plus one far away.
        let reqs: Vec<IoReq> = (0..4)
            .map(|i| IoReq::write(1000 + i * 8, vec![i as u8; 4096]))
            .chain(std::iter::once(IoReq::write(500_000, vec![9u8; 4096])))
            .collect();
        d.submit_batch(reqs);
        assert_eq!(d.stats().logical_requests, 5);
        assert_eq!(d.stats().physical_requests, 2);
        assert_eq!(d.stats().coalesced, 3);
        // Contents landed in the right places.
        let mut buf = vec![0u8; 4096];
        d.read(1000 + 2 * 8, &mut buf);
        assert!(buf.iter().all(|&b| b == 2));
    }

    #[test]
    fn batch_scatter_gather_read() {
        let d = driver(Scheduler::CLook);
        for i in 0..4u8 {
            d.write(2000 + i as u64 * 8, &vec![i; 4096]);
        }
        let reqs = (0..4).map(|i| IoReq::read(2000 + i * 8, 4096)).collect();
        let done = d.submit_batch(reqs);
        for r in &done {
            let want = ((r.lba - 2000) / 8) as u8;
            assert!(r.data.iter().all(|&b| b == want), "wrong data at lba {}", r.lba);
        }
        assert_eq!(d.stats().physical_requests, 4 + 1); // 4 writes + 1 merged read
    }

    #[test]
    fn coalesced_batch_is_much_faster_than_fcfs_scatter() {
        // 16 adjacent blocks written as one batch...
        let grouped = driver(Scheduler::CLook);
        let reqs = (0..16).map(|i| IoReq::write(10_000 + i * 8, vec![0u8; 4096])).collect();
        grouped.submit_batch(reqs);
        let t_grouped = grouped.now();

        // ...versus 16 scattered blocks written one at a time.
        let scattered = driver(Scheduler::Fcfs);
        for i in 0..16u64 {
            scattered.write(10_000 + i * 50_000, &vec![0u8; 4096]);
        }
        let t_scattered = scattered.now();
        assert!(t_scattered.as_nanos() > 5 * t_grouped.as_nanos());
    }

    #[test]
    fn clook_orders_ascending_from_arm() {
        let d = driver(Scheduler::CLook);
        // Move the arm inward first.
        d.write(1_000_000, &vec![0u8; 512]);
        let reqs = vec![
            IoReq::write(500, vec![1u8; 512]),
            IoReq::write(1_500_000, vec![2u8; 512]),
            IoReq::write(1_200_000, vec![3u8; 512]),
        ];
        let done = d.submit_batch(reqs);
        let lbas: Vec<u64> = done.iter().map(|r| r.lba).collect();
        // One ascending sweep from the arm (at ~1M), then wrap.
        assert_eq!(lbas, vec![1_200_000, 1_500_000, 500]);
    }

    #[test]
    fn sstf_visits_nearest_first() {
        let d = driver(Scheduler::Sstf);
        let reqs = vec![
            IoReq::write(1_800_000, vec![0u8; 512]),
            IoReq::write(100, vec![0u8; 512]),
            IoReq::write(900_000, vec![0u8; 512]),
        ];
        let done = d.submit_batch(reqs);
        // Arm starts at cylinder 0: nearest is lba 100.
        assert_eq!(done[0].lba, 100);
    }

    #[test]
    fn empty_batch_is_noop() {
        let d = driver(Scheduler::CLook);
        let t0 = d.now();
        let out = d.submit_batch(Vec::new());
        assert!(out.is_empty());
        assert_eq!(d.now(), t0);
        assert_eq!(d.stats().batches, 0);
    }

    #[test]
    fn advance_moves_clock_only() {
        let d = driver(Scheduler::CLook);
        d.advance(SimDuration::from_millis(3));
        assert_eq!(d.now().as_nanos(), 3_000_000);
        assert_eq!(d.disk_stats().total_requests(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::models;
    use crate::Disk;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// Every scheduler services every submitted request exactly once
        /// (same multiset of LBAs back), and written data always lands.
        #[test]
        fn schedulers_lose_nothing(
            lbas in prop::collection::vec(0u64..8_000, 1..40),
            sched in prop::sample::select(vec![Scheduler::Fcfs, Scheduler::CLook, Scheduler::Sstf]),
        ) {
            let drv = Driver::new(
                Disk::new(models::tiny_test_disk()),
                DriverConfig { scheduler: sched },
            );
            // Deduplicate: duplicate-LBA writes have order-dependent results.
            let mut lbas = lbas;
            lbas.sort_unstable();
            lbas.dedup();
            let reqs: Vec<IoReq> = lbas
                .iter()
                .map(|&l| IoReq::write(l * 8, vec![(l % 251) as u8; 4096]))
                .collect();
            let done = drv.submit_batch(reqs);
            let mut got: Vec<u64> = done.iter().map(|r| r.lba / 8).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &lbas);
            // Contents landed regardless of service order.
            for &l in &lbas {
                let mut buf = vec![0u8; 4096];
                drv.read(l * 8, &mut buf);
                prop_assert!(buf.iter().all(|&b| b == (l % 251) as u8), "lba {}", l);
            }
        }

        /// Coalescing accounting: logical = physical + coalesced.
        #[test]
        fn coalescing_accounting_balances(
            lbas in prop::collection::vec(0u64..2_000, 1..60)
        ) {
            let drv = Driver::new(
                Disk::new(models::tiny_test_disk()),
                DriverConfig { scheduler: Scheduler::CLook },
            );
            let mut lbas = lbas;
            lbas.sort_unstable();
            lbas.dedup();
            let n = lbas.len() as u64;
            let reqs = lbas.into_iter().map(|l| IoReq::write(l * 8, vec![0u8; 4096])).collect();
            drv.submit_batch(reqs);
            let s = drv.stats();
            prop_assert_eq!(s.logical_requests, n);
            prop_assert_eq!(s.physical_requests + s.coalesced, n);
        }
    }
}

//! The disk driver: request scheduling, scatter/gather coalescing and the
//! simulated clock.
//!
//! The paper's testbed driver (taken from NetBSD) "supports scatter/gather
//! I/O and uses a C-LOOK scheduling algorithm [Worthington94]". The driver
//! here does the same: a batch of block requests is ordered by the chosen
//! scheduler, physically adjacent requests of the same direction are merged
//! into a single disk request, and the batch is serviced back-to-back.
//!
//! The driver also owns the simulated clock. File systems charge CPU time
//! to it (via [`Driver::advance`]) and I/O time flows through the disk's
//! completion times, so `driver.now()` is always "how long has this
//! experiment taken so far".

use crate::disk::Disk;
use crate::stats::DiskStats;
use crate::time::{SimDuration, SimTime};
use crate::SECTOR_SIZE;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::{obj, Ctr, Obs, Sig};
use std::sync::Arc;

/// Request ordering policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// First-come, first-served.
    Fcfs,
    /// Circular LOOK: service ascending from the arm position, wrap once.
    /// What the paper's testbed used.
    #[default]
    CLook,
    /// Shortest seek time first (by cylinder distance).
    Sstf,
}

/// Driver configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverConfig {
    /// Scheduling policy for batches.
    pub scheduler: Scheduler,
}

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDir {
    /// Device-to-host.
    Read,
    /// Host-to-device.
    Write,
}

/// One block-aligned request in a batch.
#[derive(Debug, Clone)]
pub struct IoReq {
    /// Starting sector.
    pub lba: u64,
    /// Direction.
    pub dir: IoDir,
    /// Payload for writes; capacity hint (`len` bytes to read) for reads.
    pub data: Vec<u8>,
}

impl IoReq {
    /// A write request.
    pub fn write(lba: u64, data: Vec<u8>) -> Self {
        IoReq { lba, dir: IoDir::Write, data }
    }

    /// A read request for `len` bytes.
    pub fn read(lba: u64, len: usize) -> Self {
        IoReq { lba, dir: IoDir::Read, data: vec![0u8; len] }
    }

    fn sectors(&self) -> u64 {
        (self.data.len() / SECTOR_SIZE) as u64
    }
}

/// Driver-level statistics (above the disk's own counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Requests handed to the driver before coalescing.
    pub logical_requests: u64,
    /// Requests issued to the disk after coalescing.
    pub physical_requests: u64,
    /// Logical requests eliminated by scatter/gather merging.
    pub coalesced: u64,
    /// Batches submitted.
    pub batches: u64,
}

impl ToJson for DriverStats {
    fn to_json(&self) -> Json {
        obj![
            ("logical_requests", self.logical_requests.to_json()),
            ("physical_requests", self.physical_requests.to_json()),
            ("coalesced", self.coalesced.to_json()),
            ("batches", self.batches.to_json()),
        ]
    }
}

/// The driver: disk + scheduler + simulated clock.
#[derive(Debug)]
pub struct Driver {
    disk: Disk,
    config: DriverConfig,
    now: SimTime,
    stats: DriverStats,
}

impl Driver {
    /// Wrap a disk with the given configuration; the clock starts at zero.
    pub fn new(disk: Disk, config: DriverConfig) -> Self {
        Driver { disk, config, now: SimTime::ZERO, stats: DriverStats::default() }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock by `d` (CPU work, think time, etc.).
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
        self.sync_clock();
    }

    /// Mirror the clock into the shared [`Obs`] so span guards can
    /// compute op latencies without borrowing the driver.
    fn sync_clock(&self) {
        self.disk.obs().set_clock_ns(self.now.as_nanos());
    }

    /// The shared observability handle (owned by the disk).
    pub fn obs(&self) -> Arc<Obs> {
        self.disk.obs()
    }

    /// Borrow the underlying disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Mutably borrow the underlying disk (raw access, cache flush).
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// Take the disk back (e.g. to remount a file system on it).
    pub fn into_disk(self) -> Disk {
        self.disk
    }

    /// Disk-level statistics.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Driver-level statistics.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// Reset both driver and disk statistics.
    pub fn reset_stats(&mut self) {
        self.stats = DriverStats::default();
        self.disk.reset_stats();
    }

    /// Synchronously read `buf.len()` bytes at `lba`, advancing the clock.
    pub fn read(&mut self, lba: u64, buf: &mut [u8]) {
        self.stats.logical_requests += 1;
        self.stats.physical_requests += 1;
        let obs = self.disk.obs();
        obs.bump(Ctr::DriverLogicalRequests);
        obs.bump(Ctr::DriverPhysicalRequests);
        obs.bump(Ctr::DriverSgSegments);
        self.now = self.disk.read(self.now, lba, buf);
        self.sync_clock();
    }

    /// Synchronously write at `lba`, advancing the clock.
    pub fn write(&mut self, lba: u64, buf: &[u8]) {
        self.stats.logical_requests += 1;
        self.stats.physical_requests += 1;
        let obs = self.disk.obs();
        obs.bump(Ctr::DriverLogicalRequests);
        obs.bump(Ctr::DriverPhysicalRequests);
        obs.bump(Ctr::DriverSgSegments);
        self.now = self.disk.write(self.now, lba, buf);
        self.sync_clock();
    }

    /// Submit a batch: schedule, coalesce physically adjacent same-direction
    /// requests into scatter/gather transfers, and service them all.
    /// Read payloads are filled in place; the batch is returned in its
    /// (scheduled) service order.
    pub fn submit_batch(&mut self, mut reqs: Vec<IoReq>) -> Vec<IoReq> {
        if reqs.is_empty() {
            return reqs;
        }
        self.stats.batches += 1;
        self.stats.logical_requests += reqs.len() as u64;
        let obs = self.disk.obs();
        obs.bump(Ctr::DriverBatches);
        obs.add(Ctr::DriverLogicalRequests, reqs.len() as u64);
        obs.histos().driver_batch_reqs.record(reqs.len() as u64);
        obs.signal_sample(Sig::QueueDepth, reqs.len() as f64);

        self.order(&mut reqs);

        // Coalesce adjacent same-direction runs: (lba, dir, [(req idx, len)]).
        type Merged = Vec<(u64, IoDir, Vec<(usize, usize)>)>;
        let mut merged: Merged = Vec::new();
        let mut spans: Vec<IoReq> = Vec::new();
        for req in reqs {
            let nsect = req.sectors();
            match merged.last_mut() {
                Some((lba, dir, parts))
                    if *dir == req.dir
                        && *lba + parts.iter().map(|p| p.1 as u64 / SECTOR_SIZE as u64).sum::<u64>()
                            == req.lba =>
                {
                    parts.push((spans.len(), req.data.len()));
                    let _ = nsect;
                }
                _ => {
                    merged.push((req.lba, req.dir, vec![(spans.len(), req.data.len())]));
                }
            }
            spans.push(req);
        }

        for (lba, dir, parts) in merged {
            self.stats.physical_requests += 1;
            self.stats.coalesced += parts.len() as u64 - 1;
            obs.bump(Ctr::DriverPhysicalRequests);
            obs.add(Ctr::DriverSgSegments, parts.len() as u64);
            obs.add(Ctr::DriverCoalesced, parts.len() as u64 - 1);
            let total: usize = parts.iter().map(|p| p.1).sum();
            match dir {
                IoDir::Write => {
                    let mut buf = Vec::with_capacity(total);
                    for &(idx, _) in &parts {
                        buf.extend_from_slice(&spans[idx].data);
                    }
                    self.now = self.disk.write(self.now, lba, &buf);
                }
                IoDir::Read => {
                    let mut buf = vec![0u8; total];
                    self.now = self.disk.read(self.now, lba, &mut buf);
                    let mut off = 0;
                    for &(idx, len) in &parts {
                        spans[idx].data.copy_from_slice(&buf[off..off + len]);
                        off += len;
                    }
                }
            }
        }
        self.sync_clock();
        spans
    }

    fn order(&self, reqs: &mut Vec<IoReq>) {
        match self.config.scheduler {
            Scheduler::Fcfs => {}
            Scheduler::CLook => {
                reqs.sort_by_key(|r| r.lba);
                // Find the first request at or beyond the arm and rotate the
                // ascending order to start there (one sweep, then wrap).
                let arm = self.disk.arm_cylinder();
                let split = reqs
                    .iter()
                    .position(|r| {
                        self.disk.model().geometry.lba_to_chs(r.lba).cylinder >= arm
                    })
                    .unwrap_or(0);
                reqs.rotate_left(split);
            }
            Scheduler::Sstf => {
                // Greedy nearest-cylinder-first from the current arm position.
                let geom = &self.disk.model().geometry;
                let mut cur = self.disk.arm_cylinder();
                let mut rest: Vec<IoReq> = std::mem::take(reqs);
                while !rest.is_empty() {
                    let (i, _) = rest
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, r)| geom.lba_to_chs(r.lba).cylinder.abs_diff(cur))
                        .expect("nonempty");
                    let r = rest.swap_remove(i);
                    cur = geom.lba_to_chs(r.lba).cylinder;
                    reqs.push(r);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn driver(sched: Scheduler) -> Driver {
        Driver::new(Disk::new(models::seagate_st31200()), DriverConfig { scheduler: sched })
    }

    #[test]
    fn read_write_round_trip_through_driver() {
        let mut d = driver(Scheduler::CLook);
        let data = vec![0x5Au8; 4096];
        d.write(800, &data);
        let mut back = vec![0u8; 4096];
        d.read(800, &mut back);
        assert_eq!(back, data);
        assert!(d.now() > SimTime::ZERO);
    }

    #[test]
    fn batch_coalesces_adjacent_writes() {
        let mut d = driver(Scheduler::CLook);
        // Four adjacent 4 KB writes (a 16 KB group flush) plus one far away.
        let reqs: Vec<IoReq> = (0..4)
            .map(|i| IoReq::write(1000 + i * 8, vec![i as u8; 4096]))
            .chain(std::iter::once(IoReq::write(500_000, vec![9u8; 4096])))
            .collect();
        d.submit_batch(reqs);
        assert_eq!(d.stats().logical_requests, 5);
        assert_eq!(d.stats().physical_requests, 2);
        assert_eq!(d.stats().coalesced, 3);
        // Contents landed in the right places.
        let mut buf = vec![0u8; 4096];
        d.read(1000 + 2 * 8, &mut buf);
        assert!(buf.iter().all(|&b| b == 2));
    }

    #[test]
    fn batch_scatter_gather_read() {
        let mut d = driver(Scheduler::CLook);
        for i in 0..4u8 {
            d.write(2000 + i as u64 * 8, &vec![i; 4096]);
        }
        let reqs = (0..4).map(|i| IoReq::read(2000 + i * 8, 4096)).collect();
        let done = d.submit_batch(reqs);
        for r in &done {
            let want = ((r.lba - 2000) / 8) as u8;
            assert!(r.data.iter().all(|&b| b == want), "wrong data at lba {}", r.lba);
        }
        assert_eq!(d.stats().physical_requests, 4 + 1); // 4 writes + 1 merged read
    }

    #[test]
    fn coalesced_batch_is_much_faster_than_fcfs_scatter() {
        // 16 adjacent blocks written as one batch...
        let mut grouped = driver(Scheduler::CLook);
        let reqs = (0..16).map(|i| IoReq::write(10_000 + i * 8, vec![0u8; 4096])).collect();
        grouped.submit_batch(reqs);
        let t_grouped = grouped.now();

        // ...versus 16 scattered blocks written one at a time.
        let mut scattered = driver(Scheduler::Fcfs);
        for i in 0..16u64 {
            scattered.write(10_000 + i * 50_000, &vec![0u8; 4096]);
        }
        let t_scattered = scattered.now();
        assert!(t_scattered.as_nanos() > 5 * t_grouped.as_nanos());
    }

    #[test]
    fn clook_orders_ascending_from_arm() {
        let mut d = driver(Scheduler::CLook);
        // Move the arm inward first.
        d.write(1_000_000, &vec![0u8; 512]);
        let reqs = vec![
            IoReq::write(500, vec![1u8; 512]),
            IoReq::write(1_500_000, vec![2u8; 512]),
            IoReq::write(1_200_000, vec![3u8; 512]),
        ];
        let done = d.submit_batch(reqs);
        let lbas: Vec<u64> = done.iter().map(|r| r.lba).collect();
        // One ascending sweep from the arm (at ~1M), then wrap.
        assert_eq!(lbas, vec![1_200_000, 1_500_000, 500]);
    }

    #[test]
    fn sstf_visits_nearest_first() {
        let mut d = driver(Scheduler::Sstf);
        let reqs = vec![
            IoReq::write(1_800_000, vec![0u8; 512]),
            IoReq::write(100, vec![0u8; 512]),
            IoReq::write(900_000, vec![0u8; 512]),
        ];
        let done = d.submit_batch(reqs);
        // Arm starts at cylinder 0: nearest is lba 100.
        assert_eq!(done[0].lba, 100);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut d = driver(Scheduler::CLook);
        let t0 = d.now();
        let out = d.submit_batch(Vec::new());
        assert!(out.is_empty());
        assert_eq!(d.now(), t0);
        assert_eq!(d.stats().batches, 0);
    }

    #[test]
    fn advance_moves_clock_only() {
        let mut d = driver(Scheduler::CLook);
        d.advance(SimDuration::from_millis(3));
        assert_eq!(d.now().as_nanos(), 3_000_000);
        assert_eq!(d.disk_stats().total_requests(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::models;
    use crate::Disk;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// Every scheduler services every submitted request exactly once
        /// (same multiset of LBAs back), and written data always lands.
        #[test]
        fn schedulers_lose_nothing(
            lbas in prop::collection::vec(0u64..8_000, 1..40),
            sched in prop::sample::select(vec![Scheduler::Fcfs, Scheduler::CLook, Scheduler::Sstf]),
        ) {
            let mut drv = Driver::new(
                Disk::new(models::tiny_test_disk()),
                DriverConfig { scheduler: sched },
            );
            // Deduplicate: duplicate-LBA writes have order-dependent results.
            let mut lbas = lbas;
            lbas.sort_unstable();
            lbas.dedup();
            let reqs: Vec<IoReq> = lbas
                .iter()
                .map(|&l| IoReq::write(l * 8, vec![(l % 251) as u8; 4096]))
                .collect();
            let done = drv.submit_batch(reqs);
            let mut got: Vec<u64> = done.iter().map(|r| r.lba / 8).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &lbas);
            // Contents landed regardless of service order.
            for &l in &lbas {
                let mut buf = vec![0u8; 4096];
                drv.read(l * 8, &mut buf);
                prop_assert!(buf.iter().all(|&b| b == (l % 251) as u8), "lba {}", l);
            }
        }

        /// Coalescing accounting: logical = physical + coalesced.
        #[test]
        fn coalescing_accounting_balances(
            lbas in prop::collection::vec(0u64..2_000, 1..60)
        ) {
            let mut drv = Driver::new(
                Disk::new(models::tiny_test_disk()),
                DriverConfig { scheduler: Scheduler::CLook },
            );
            let mut lbas = lbas;
            lbas.sort_unstable();
            lbas.dedup();
            let n = lbas.len() as u64;
            let reqs = lbas.into_iter().map(|l| IoReq::write(l * 8, vec![0u8; 4096])).collect();
            drv.submit_batch(reqs);
            let s = drv.stats();
            prop_assert_eq!(s.logical_requests, n);
            prop_assert_eq!(s.physical_requests + s.coalesced, n);
        }
    }
}

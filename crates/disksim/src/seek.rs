//! The seek-time model.
//!
//! Drive vendors publish three numbers: single-cylinder, average, and
//! full-stroke seek time. Following Ruemmler & Wilkes ("An introduction to
//! disk drive modeling") and the scheduling literature the paper cites
//! ([Worthington94], [Worthington95]), we fit a two-piece curve through
//! those points:
//!
//! * short seeks (`d <= pivot`): `a + b * sqrt(d)` — dominated by the
//!   acceleration phase of the arm;
//! * long seeks (`d > pivot`): `c + e * d` — dominated by the coast phase.
//!
//! The pivot is placed at one third of the cylinder count, the distance at
//! which the *average* seek occurs for uniformly random request pairs. The
//! paper leans on a property this curve reproduces: "seeking a single
//! cylinder generally costs a full millisecond, and this cost rises quickly
//! for slightly longer seek distances" [Worthington95] — which is why mere
//! *locality* (same cylinder group) buys much less than *adjacency*.

use crate::time::SimDuration;
use cffs_obs::json::{FromJson, Json, JsonError, ToJson};
use cffs_obs::obj;

/// Piecewise seek-time curve fitted to vendor-published seek figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeekCurve {
    /// Total cylinders on the drive the curve was fitted for.
    pub cylinders: u32,
    /// Pivot distance separating the sqrt and linear regions.
    pivot: u32,
    /// Short-region constant (ms).
    a: f64,
    /// Short-region sqrt coefficient (ms / sqrt(cyl)).
    b: f64,
    /// Long-region constant (ms).
    c: f64,
    /// Long-region slope (ms / cyl).
    e: f64,
}

impl ToJson for SeekCurve {
    fn to_json(&self) -> Json {
        obj![
            ("cylinders", self.cylinders.to_json()),
            ("pivot", self.pivot.to_json()),
            ("a", self.a.to_json()),
            ("b", self.b.to_json()),
            ("c", self.c.to_json()),
            ("e", self.e.to_json()),
        ]
    }
}

impl FromJson for SeekCurve {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(SeekCurve {
            cylinders: u32::from_json(j.want("cylinders")?)?,
            pivot: u32::from_json(j.want("pivot")?)?,
            a: f64::from_json(j.want("a")?)?,
            b: f64::from_json(j.want("b")?)?,
            c: f64::from_json(j.want("c")?)?,
            e: f64::from_json(j.want("e")?)?,
        })
    }
}

impl SeekCurve {
    /// Fit a curve through the three published points.
    ///
    /// * `single_ms` — time to seek one cylinder,
    /// * `avg_ms` — the vendor "average seek", interpreted as the seek time
    ///   at distance `cylinders / 3`,
    /// * `full_ms` — full-stroke seek (distance `cylinders - 1`).
    ///
    /// # Panics
    /// Panics unless `0 < single_ms <= avg_ms <= full_ms` and the drive has
    /// at least 16 cylinders — a degenerate fit would produce nonsense
    /// timings silently.
    pub fn fit(cylinders: u32, single_ms: f64, avg_ms: f64, full_ms: f64) -> Self {
        assert!(cylinders >= 16, "too few cylinders ({cylinders}) for a seek fit");
        assert!(
            single_ms > 0.0 && single_ms <= avg_ms && avg_ms <= full_ms,
            "seek points must satisfy 0 < single <= avg <= full \
             (got {single_ms}, {avg_ms}, {full_ms})"
        );
        let pivot = (cylinders / 3).max(2);
        // Short region through (1, single) and (pivot, avg).
        let sp = (pivot as f64).sqrt();
        let b = (avg_ms - single_ms) / (sp - 1.0);
        let a = single_ms - b;
        // Long region through (pivot, avg) and (cylinders-1, full).
        let d_full = (cylinders - 1) as f64;
        let e = (full_ms - avg_ms) / (d_full - pivot as f64);
        let c = avg_ms - e * pivot as f64;
        SeekCurve { cylinders, pivot, a, b, c, e }
    }

    /// Seek time for a move of `distance` cylinders. Zero distance is free
    /// (track switches are charged separately as head-switch time).
    pub fn seek_time(&self, distance: u32) -> SimDuration {
        if distance == 0 {
            return SimDuration::ZERO;
        }
        let d = distance.min(self.cylinders - 1) as f64;
        let ms = if distance <= self.pivot {
            self.a + self.b * d.sqrt()
        } else {
            self.c + self.e * d
        };
        SimDuration::from_millis_f64(ms.max(0.0))
    }

    /// The published average-seek point the curve was fitted through.
    pub fn average(&self) -> SimDuration {
        self.seek_time(self.pivot)
    }

    /// The published full-stroke point.
    pub fn full_stroke(&self) -> SimDuration {
        self.seek_time(self.cylinders - 1)
    }

    /// The published single-cylinder point.
    pub fn single(&self) -> SimDuration {
        self.seek_time(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> SeekCurve {
        // Roughly the paper's Table 1 Seagate column: 0.6 / 8.0 / 19.0 ms.
        SeekCurve::fit(4000, 0.6, 8.0, 19.0)
    }

    #[test]
    fn fit_recovers_published_points() {
        let c = curve();
        assert!((c.single().as_millis_f64() - 0.6).abs() < 1e-6);
        assert!((c.average().as_millis_f64() - 8.0).abs() < 1e-6);
        assert!((c.full_stroke().as_millis_f64() - 19.0).abs() < 1e-6);
    }

    #[test]
    fn zero_distance_is_free() {
        assert_eq!(curve().seek_time(0), SimDuration::ZERO);
    }

    #[test]
    fn monotone_nondecreasing() {
        let c = curve();
        let mut prev = SimDuration::ZERO;
        for d in 1..4000 {
            let t = c.seek_time(d);
            assert!(t >= prev, "seek time decreased at distance {d}");
            prev = t;
        }
    }

    #[test]
    fn short_seeks_cost_disproportionately() {
        // The paper's point: a 1-cylinder seek is within an order of
        // magnitude of the average seek, so locality alone can't win big.
        let c = curve();
        let one = c.seek_time(1).as_millis_f64();
        let avg = c.average().as_millis_f64();
        assert!(avg / one < 20.0, "single-cylinder seek unrealistically cheap");
    }

    #[test]
    fn distance_clamped_to_full_stroke() {
        let c = curve();
        assert_eq!(c.seek_time(100_000), c.seek_time(3999));
    }

    #[test]
    #[should_panic(expected = "seek points")]
    fn bad_points_rejected() {
        SeekCurve::fit(4000, 9.0, 8.0, 19.0);
    }

    #[test]
    #[should_panic(expected = "too few cylinders")]
    fn tiny_disks_rejected() {
        SeekCurve::fit(4, 0.5, 1.0, 2.0);
    }
}

//! Sparse in-memory sector store.
//!
//! Disk images are gigabyte-scale but mostly empty during experiments, so
//! contents are stored in 4 KB chunks allocated on first touch. Unwritten
//! sectors read back as zeroes, like a freshly formatted drive.

use crate::SECTOR_SIZE;
use std::collections::HashMap;
use std::io::{self, Read, Write};

/// Size of one allocation chunk, in bytes.
const CHUNK_SIZE: usize = 4096;
/// Sectors per allocation chunk.
const SECTORS_PER_CHUNK: u64 = (CHUNK_SIZE / SECTOR_SIZE) as u64;

/// Sparse byte store addressed by sector number.
#[derive(Debug, Default, Clone)]
pub struct SectorStore {
    chunks: HashMap<u64, Box<[u8; CHUNK_SIZE]>>,
}

impl SectorStore {
    /// Create an empty (all-zero) store.
    pub fn new() -> Self {
        SectorStore { chunks: HashMap::new() }
    }

    /// Number of chunks currently materialized (for tests and memory stats).
    pub fn materialized_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Read `buf.len()` bytes starting at sector `lba`.
    ///
    /// # Panics
    /// Panics if `buf.len()` is not a multiple of the sector size.
    pub fn read(&self, lba: u64, buf: &mut [u8]) {
        assert_eq!(buf.len() % SECTOR_SIZE, 0, "unaligned read of {} bytes", buf.len());
        let mut off = 0usize;
        let mut sector = lba;
        while off < buf.len() {
            let chunk_idx = sector / SECTORS_PER_CHUNK;
            let in_chunk = (sector % SECTORS_PER_CHUNK) as usize * SECTOR_SIZE;
            let n = (CHUNK_SIZE - in_chunk).min(buf.len() - off);
            match self.chunks.get(&chunk_idx) {
                Some(c) => buf[off..off + n].copy_from_slice(&c[in_chunk..in_chunk + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
            sector += (n / SECTOR_SIZE) as u64;
        }
    }

    /// Serialize the sparse image: a magic header, the chunk count, then
    /// `(chunk index, 4096 bytes)` records in ascending order.
    pub fn save_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(b"CFFSIMG1")?;
        let mut indices: Vec<u64> = self.chunks.keys().copied().collect();
        indices.sort_unstable();
        w.write_all(&(indices.len() as u64).to_le_bytes())?;
        for i in indices {
            w.write_all(&i.to_le_bytes())?;
            w.write_all(&self.chunks[&i][..])?;
        }
        Ok(())
    }

    /// Deserialize an image produced by [`SectorStore::save_to`].
    ///
    /// # Errors
    /// Returns `InvalidData` on a bad magic or truncated record.
    pub fn load_from(r: &mut impl Read) -> io::Result<SectorStore> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != b"CFFSIMG1" {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad image magic"));
        }
        let mut n8 = [0u8; 8];
        r.read_exact(&mut n8)?;
        let n = u64::from_le_bytes(n8);
        let mut chunks = HashMap::with_capacity(n as usize);
        for _ in 0..n {
            r.read_exact(&mut n8)?;
            let idx = u64::from_le_bytes(n8);
            let mut chunk = Box::new([0u8; CHUNK_SIZE]);
            r.read_exact(&mut chunk[..])?;
            chunks.insert(idx, chunk);
        }
        Ok(SectorStore { chunks })
    }

    /// Write `buf.len()` bytes starting at sector `lba`.
    ///
    /// # Panics
    /// Panics if `buf.len()` is not a multiple of the sector size.
    pub fn write(&mut self, lba: u64, buf: &[u8]) {
        assert_eq!(buf.len() % SECTOR_SIZE, 0, "unaligned write of {} bytes", buf.len());
        let mut off = 0usize;
        let mut sector = lba;
        while off < buf.len() {
            let chunk_idx = sector / SECTORS_PER_CHUNK;
            let in_chunk = (sector % SECTORS_PER_CHUNK) as usize * SECTOR_SIZE;
            let n = (CHUNK_SIZE - in_chunk).min(buf.len() - off);
            let chunk = self
                .chunks
                .entry(chunk_idx)
                .or_insert_with(|| Box::new([0u8; CHUNK_SIZE]));
            chunk[in_chunk..in_chunk + n].copy_from_slice(&buf[off..off + n]);
            off += n;
            sector += (n / SECTOR_SIZE) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let s = SectorStore::new();
        let mut buf = vec![0xFFu8; 1024];
        s.read(123, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_read_round_trip() {
        let mut s = SectorStore::new();
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        s.write(7, &data);
        let mut back = vec![0u8; 4096];
        s.read(7, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn cross_chunk_write() {
        let mut s = SectorStore::new();
        // Sector 7 spans chunks 0 (sector 7) and 1 (sectors 8..).
        let data = vec![0xAAu8; 3 * SECTOR_SIZE];
        s.write(7, &data);
        let mut one = vec![0u8; SECTOR_SIZE];
        s.read(8, &mut one);
        assert!(one.iter().all(|&b| b == 0xAA));
        s.read(6, &mut one);
        assert!(one.iter().all(|&b| b == 0));
    }

    #[test]
    fn sparse_allocation() {
        let mut s = SectorStore::new();
        s.write(0, &[1u8; SECTOR_SIZE]);
        s.write(1_000_000, &[2u8; SECTOR_SIZE]);
        assert_eq!(s.materialized_chunks(), 2);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_rejected() {
        let mut s = SectorStore::new();
        s.write(0, &[0u8; 100]);
    }

    #[test]
    fn image_save_load_round_trip() {
        let mut s = SectorStore::new();
        s.write(0, &[1u8; SECTOR_SIZE]);
        s.write(9999, &[2u8; 3 * SECTOR_SIZE]);
        let mut bytes = Vec::new();
        s.save_to(&mut bytes).unwrap();
        let s2 = SectorStore::load_from(&mut bytes.as_slice()).unwrap();
        let mut buf = vec![0u8; SECTOR_SIZE];
        s2.read(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 1));
        s2.read(10_001, &mut buf);
        assert!(buf.iter().all(|&b| b == 2));
        s2.read(500, &mut buf);
        assert!(buf.iter().all(|&b| b == 0), "sparse holes stay zero");
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(SectorStore::load_from(&mut &b"NOTMAGIC00"[..]).is_err());
        // Truncated record.
        let mut s = SectorStore::new();
        s.write(0, &[7u8; SECTOR_SIZE]);
        let mut bytes = Vec::new();
        s.save_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 10);
        assert!(SectorStore::load_from(&mut bytes.as_slice()).is_err());
    }
}

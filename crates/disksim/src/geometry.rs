//! Zoned disk geometry: mapping logical block addresses to physical
//! (cylinder, head, sector) positions, including track and cylinder skew.
//!
//! Mid-90s drives record more sectors on outer tracks than inner ones
//! ("zoned bit recording"). The drives in the paper's Table 1 all do this;
//! the paper's Figure 2 bandwidth numbers depend on it. We model a small
//! number of zones, each spanning a contiguous cylinder range with a fixed
//! sectors-per-track count.
//!
//! Sequential-transfer behaviour depends on *skew*: when a transfer crosses
//! from one track to the next, the head switch takes time, so the first
//! sector of each track is rotationally offset ("skewed") from the previous
//! track's first sector. If the skew matches the switch time, sequential
//! reads proceed at nearly full media rate. We model track skew and cylinder
//! skew in sector units, as drive vendors specify them.

use cffs_obs::json::{FromJson, Json, JsonError, ToJson};
use cffs_obs::obj;

/// One recording zone: a contiguous range of cylinders sharing a
/// sectors-per-track count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zone {
    /// Number of cylinders in this zone.
    pub cylinders: u32,
    /// Sectors per track within this zone.
    pub sectors_per_track: u32,
}

/// Physical position of a sector on the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChsPos {
    /// Cylinder index from the outermost (0).
    pub cylinder: u32,
    /// Head (surface) index.
    pub head: u32,
    /// Sector index within the track.
    pub sector: u32,
    /// Sectors per track at this cylinder (denormalized for convenience).
    pub sectors_per_track: u32,
}

impl ToJson for Zone {
    fn to_json(&self) -> Json {
        obj![
            ("cylinders", self.cylinders.to_json()),
            ("sectors_per_track", self.sectors_per_track.to_json()),
        ]
    }
}

impl FromJson for Zone {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Zone {
            cylinders: u32::from_json(j.want("cylinders")?)?,
            sectors_per_track: u32::from_json(j.want("sectors_per_track")?)?,
        })
    }
}

/// Full drive geometry: surfaces and zones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Geometry {
    /// Number of data surfaces (heads).
    pub heads: u32,
    /// Recording zones, outermost first.
    pub zones: Vec<Zone>,
    /// Track skew in sectors: rotational offset between track N and track
    /// N+1 on the same cylinder, hiding the head-switch time.
    pub track_skew: u32,
    /// Cylinder skew in sectors: additional offset when crossing to the next
    /// cylinder, hiding the single-cylinder seek.
    pub cylinder_skew: u32,
}

impl ToJson for Geometry {
    fn to_json(&self) -> Json {
        obj![
            ("heads", self.heads.to_json()),
            ("zones", self.zones.to_json()),
            ("track_skew", self.track_skew.to_json()),
            ("cylinder_skew", self.cylinder_skew.to_json()),
        ]
    }
}

impl FromJson for Geometry {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let heads = u32::from_json(j.want("heads")?)?;
        let zones = Vec::<Zone>::from_json(j.want("zones")?)?;
        if heads == 0 || zones.is_empty() || zones.iter().any(|z| z.cylinders == 0 || z.sectors_per_track == 0) {
            return Err(JsonError("invalid geometry in image".into()));
        }
        Ok(Geometry::new(
            heads,
            zones,
            u32::from_json(j.want("track_skew")?)?,
            u32::from_json(j.want("cylinder_skew")?)?,
        ))
    }
}

impl Geometry {
    /// Build a geometry and validate it.
    ///
    /// # Panics
    /// Panics if there are no heads, no zones, or a zone with zero cylinders
    /// or zero sectors per track — those would make LBA mapping meaningless.
    pub fn new(heads: u32, zones: Vec<Zone>, track_skew: u32, cylinder_skew: u32) -> Self {
        assert!(heads > 0, "geometry needs at least one head");
        assert!(!zones.is_empty(), "geometry needs at least one zone");
        for z in &zones {
            assert!(z.cylinders > 0, "zone with zero cylinders");
            assert!(z.sectors_per_track > 0, "zone with zero sectors/track");
        }
        Geometry { heads, zones, track_skew, cylinder_skew }
    }

    /// Total number of cylinders on the drive.
    pub fn total_cylinders(&self) -> u32 {
        self.zones.iter().map(|z| z.cylinders).sum()
    }

    /// Total number of addressable sectors on the drive.
    pub fn total_sectors(&self) -> u64 {
        self.zones
            .iter()
            .map(|z| z.cylinders as u64 * self.heads as u64 * z.sectors_per_track as u64)
            .sum()
    }

    /// Sectors per track at the given cylinder.
    ///
    /// # Panics
    /// Panics if `cyl` is beyond the last cylinder.
    pub fn sectors_per_track_at(&self, cyl: u32) -> u32 {
        let mut base = 0u32;
        for z in &self.zones {
            if cyl < base + z.cylinders {
                return z.sectors_per_track;
            }
            base += z.cylinders;
        }
        panic!("cylinder {cyl} beyond end of disk ({} cylinders)", self.total_cylinders());
    }

    /// Map a logical block address to a physical position.
    ///
    /// LBAs are laid out cylinder-major: all tracks of cylinder 0, then
    /// cylinder 1, and so on — the mapping every real drive of the era used
    /// (modulo sparing, which we don't model).
    ///
    /// # Panics
    /// Panics if `lba` is beyond the end of the disk.
    pub fn lba_to_chs(&self, lba: u64) -> ChsPos {
        let mut remaining = lba;
        let mut cyl_base = 0u32;
        for z in &self.zones {
            let zone_sectors =
                z.cylinders as u64 * self.heads as u64 * z.sectors_per_track as u64;
            if remaining < zone_sectors {
                let per_cyl = self.heads as u64 * z.sectors_per_track as u64;
                let cyl_in_zone = (remaining / per_cyl) as u32;
                let rem = remaining % per_cyl;
                let head = (rem / z.sectors_per_track as u64) as u32;
                let sector = (rem % z.sectors_per_track as u64) as u32;
                return ChsPos {
                    cylinder: cyl_base + cyl_in_zone,
                    head,
                    sector,
                    sectors_per_track: z.sectors_per_track,
                };
            }
            remaining -= zone_sectors;
            cyl_base += z.cylinders;
        }
        panic!("lba {lba} beyond end of disk ({} sectors)", self.total_sectors());
    }

    /// Inverse of [`Geometry::lba_to_chs`].
    ///
    /// # Panics
    /// Panics if the position is out of range.
    pub fn chs_to_lba(&self, pos: ChsPos) -> u64 {
        let mut lba = 0u64;
        let mut cyl_base = 0u32;
        for z in &self.zones {
            if pos.cylinder < cyl_base + z.cylinders {
                assert!(pos.head < self.heads, "head out of range");
                assert!(pos.sector < z.sectors_per_track, "sector out of range");
                let cyl_in_zone = (pos.cylinder - cyl_base) as u64;
                lba += cyl_in_zone * self.heads as u64 * z.sectors_per_track as u64;
                lba += pos.head as u64 * z.sectors_per_track as u64;
                lba += pos.sector as u64;
                return lba;
            }
            lba += z.cylinders as u64 * self.heads as u64 * z.sectors_per_track as u64;
            cyl_base += z.cylinders;
        }
        panic!("cylinder {} beyond end of disk", pos.cylinder);
    }

    /// Rotational offset, in sectors, of sector 0 of the given track relative
    /// to the index mark, produced by accumulated track and cylinder skew.
    ///
    /// Track `t` (numbered `cylinder * heads + head`) is offset by
    /// `track_skew` for every head switch since cylinder 0 plus an extra
    /// `cylinder_skew` for every cylinder crossing.
    pub fn track_skew_offset(&self, cylinder: u32, head: u32) -> u64 {
        let switches = cylinder as u64 * self.heads as u64 + head as u64;
        let cyl_crossings = cylinder as u64;
        switches * self.track_skew as u64 + cyl_crossings * self.cylinder_skew as u64
    }

    /// Angular position (fraction of a revolution in `[0, 1)`) at which the
    /// given sector *starts* on its track.
    pub fn sector_angle(&self, pos: ChsPos) -> f64 {
        let spt = pos.sectors_per_track as u64;
        let skew = self.track_skew_offset(pos.cylinder, pos.head) % spt;
        let logical = (pos.sector as u64 + skew) % spt;
        logical as f64 / spt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(
            4,
            vec![
                Zone { cylinders: 10, sectors_per_track: 100 },
                Zone { cylinders: 10, sectors_per_track: 80 },
            ],
            3,
            7,
        )
    }

    #[test]
    fn totals() {
        let g = geom();
        assert_eq!(g.total_cylinders(), 20);
        assert_eq!(g.total_sectors(), 10 * 4 * 100 + 10 * 4 * 80);
    }

    #[test]
    fn spt_lookup() {
        let g = geom();
        assert_eq!(g.sectors_per_track_at(0), 100);
        assert_eq!(g.sectors_per_track_at(9), 100);
        assert_eq!(g.sectors_per_track_at(10), 80);
        assert_eq!(g.sectors_per_track_at(19), 80);
    }

    #[test]
    #[should_panic(expected = "beyond end")]
    fn spt_out_of_range_panics() {
        geom().sectors_per_track_at(20);
    }

    #[test]
    fn lba_chs_round_trip_exhaustive() {
        let g = geom();
        for lba in 0..g.total_sectors() {
            let pos = g.lba_to_chs(lba);
            assert_eq!(g.chs_to_lba(pos), lba, "round trip failed at lba {lba}");
        }
    }

    #[test]
    fn lba_zero_is_outer_edge() {
        let g = geom();
        let p = g.lba_to_chs(0);
        assert_eq!((p.cylinder, p.head, p.sector), (0, 0, 0));
        assert_eq!(p.sectors_per_track, 100);
    }

    #[test]
    fn zone_boundary_mapping() {
        let g = geom();
        // First sector of the second zone.
        let first_z2 = 10 * 4 * 100;
        let p = g.lba_to_chs(first_z2);
        assert_eq!((p.cylinder, p.head, p.sector), (10, 0, 0));
        assert_eq!(p.sectors_per_track, 80);
    }

    #[test]
    #[should_panic(expected = "beyond end")]
    fn lba_out_of_range_panics() {
        let g = geom();
        g.lba_to_chs(g.total_sectors());
    }

    #[test]
    fn skew_accumulates() {
        let g = geom();
        assert_eq!(g.track_skew_offset(0, 0), 0);
        assert_eq!(g.track_skew_offset(0, 1), 3);
        assert_eq!(g.track_skew_offset(1, 0), 4 * 3 + 7);
    }

    #[test]
    fn sector_angle_in_unit_range() {
        let g = geom();
        for lba in (0..g.total_sectors()).step_by(97) {
            let a = g.sector_angle(g.lba_to_chs(lba));
            assert!((0.0..1.0).contains(&a), "angle {a} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "at least one zone")]
    fn empty_zones_rejected() {
        Geometry::new(2, vec![], 0, 0);
    }
}

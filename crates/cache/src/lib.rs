#![warn(missing_docs)]

//! # cffs-cache
//!
//! The file cache, modeled on the one the paper describes in Section 3:
//!
//! > "our file cache is indexed by both disk address, like the original
//! > UNIX buffer cache, and higher-level identities, like the SunOS
//! > integrated caching and virtual memory system. C-FFS uses physical
//! > identities to insert newly-read blocks of a group into the cache
//! > without back-translating to discover their file/offset identities."
//!
//! Concretely:
//!
//! * Every buffer is indexed by **physical block number**.
//! * A buffer may additionally carry a **logical identity** `(inode,
//!   logical block number)`. Group reads insert member blocks with *no*
//!   logical identity; when a file later maps one of its blocks to that
//!   physical address and finds the buffer, the identity is bound lazily —
//!   the paper's "back-binding". The [`vfs::CacheStats::backbinds`] counter
//!   records how often this happens.
//! * Write-back policy is split by the caller: data writes are **delayed**
//!   (flushed by [`BufferCache::sync`], which sorts, coalesces physically
//!   adjacent buffers into scatter/gather writes, and issues one batch —
//!   this is where grouped files get written "as a unit"); metadata writes
//!   are either **synchronous** ([`BufferCache::flush_block_sync`], used by
//!   the conventional ordering discipline) or delayed (the soft-updates
//!   emulation).
//!
//! Replacement is LRU over clean and dirty buffers alike; evicting a dirty
//! buffer writes it back first, exactly like a classic `getblk`/`bwrite`
//! buffer cache.

mod bufcache;

pub use bufcache::{BufferCache, CacheConfig};

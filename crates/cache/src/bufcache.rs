//! The buffer cache implementation. See the crate docs for the design.
//!
//! # Concurrency
//!
//! The cache is sharded: physical blocks map to independently locked
//! shards (by cylinder group when [`BufferCache::shard_by_cg`] is
//! configured, a single shard otherwise), so threads working disjoint
//! CGs never contend on buffer state. The logical (file, offset) index
//! is a separate authoritative map guarded by its own lock; per-buffer
//! back-pointers only validate it. Lock order: shard locks in ascending
//! shard index, then the logical map, then the group-fetch tally —
//! never the reverse. A lookup that starts from a logical identity
//! takes the logical lock, *releases it*, then takes the owning shard
//! lock and re-validates, so staleness can only manifest as a miss.

use cffs_disksim::driver::{Driver, IoReq};
use cffs_fslib::vfs::CacheStats;
use cffs_fslib::{FsResult, Ino, BLOCK_SIZE, SECTORS_PER_BLOCK};
use cffs_obs::{Ctr, Obs, Sig};
use std::collections::{BinaryHeap, HashMap};
use std::cmp::Reverse;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Buffer-cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Capacity in 4 KB buffers. The paper's testbed was a 16 MB machine;
    /// the default mirrors that scale so the 10 000-file benchmark does not
    /// fit in memory (as it did not on the testbed).
    pub nbufs: usize,
    /// When an eviction would write back a dirty victim and at least this
    /// fraction (in percent) of resident buffers is dirty, the cache
    /// instead flushes *all* dirty buffers as one sorted, coalesced batch —
    /// the moral equivalent of the BSD update daemon plus write
    /// clustering. Set to 100 to disable (strict one-victim write-back).
    pub flush_watermark_pct: u8,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // 16 MB of cache: the file-cache slice of the paper's testbed
        // machine. Small enough that the 40 MB small-file benchmark does
        // not fit (as it did not on the testbed), large enough that a
        // round-robin sweep over 100 directories' group extents survives.
        CacheConfig { nbufs: 4096, flush_watermark_pct: 25 }
    }
}

#[derive(Debug)]
struct Buf {
    blkno: u64,
    logical: Option<(Ino, u64)>,
    data: Vec<u8>,
    dirty: bool,
    /// Metadata block (affects accounting only; policy is caller-driven).
    meta: bool,
    stamp: u64,
    /// `Some(fetch id)` while this buffer was installed by a group
    /// prefetch and has not been hit yet — cleared (and counted as
    /// "used") on the first hit, or counted as "wasted" if the buffer
    /// leaves the cache still untouched.
    gfetch: Option<u32>,
}

/// Utilization accounting for one in-flight group prefetch.
#[derive(Debug)]
struct GroupFetch {
    /// Blocks the fetch actually installed.
    fetched: u32,
    /// Blocks whose fate is known (used or wasted) so far.
    resolved: u32,
    /// Blocks hit at least once before leaving the cache.
    used: u32,
    /// Cylinder group of the fetch's first block (group extents never
    /// span CGs), for the per-CG utilization EWMA. `None` when the obs
    /// handle carries no CG table.
    cg: Option<usize>,
}

/// Physical-block → shard mapping: blocks of one cylinder group always
/// land in one shard, so per-CG workloads lock exactly one shard.
#[derive(Debug, Clone, Copy)]
struct ShardMap {
    cg_blocks: u64,
    nshards: usize,
}

/// One independently locked cache shard: buffer pool, physical index
/// and LRU clock. Logical identities live in the cache-wide map; each
/// buffer's `logical` field is a back-pointer used for validation.
#[derive(Debug)]
struct CacheCore {
    nbufs: usize,
    flush_watermark_pct: u8,
    bufs: Vec<Option<Buf>>,
    free_slots: Vec<usize>,
    phys: HashMap<u64, usize>,
    /// Lazy min-heap of (stamp, slot) for LRU eviction.
    lru: BinaryHeap<Reverse<(u64, usize)>>,
    tick: u64,
    stats: CacheStats,
}

/// Shared context threaded into shard operations: everything a shard
/// may need *while its own lock is held* (the driver and the two
/// cache-wide side tables that sit below shards in the lock order).
struct Ctx<'a> {
    obs: &'a Arc<Obs>,
    driver: &'a Driver,
    logical: &'a Mutex<HashMap<(Ino, u64), u64>>,
    gfetches: &'a Mutex<HashMap<u32, GroupFetch>>,
}

/// Remove the authoritative logical entry for `id` if it still names
/// `blkno` (it may have been rebound to a newer block meanwhile).
fn unbind_entry(ctx: &Ctx, id: (Ino, u64), blkno: u64) {
    let mut lm = ctx.obs.lock_timed(ctx.logical, Ctr::LockWaitNsCache);
    if lm.get(&id) == Some(&blkno) {
        lm.remove(&id);
    }
}

/// A group-fetched buffer left the cache without ever being hit.
fn gfetch_wasted(ctx: &Ctx, id: u32) {
    ctx.obs.bump(Ctr::GroupFetchBlocksWasted);
    gfetch_resolve(ctx, id, false);
}

/// One block of fetch `id` resolved; once all have, record the
/// fetch's utilization (percent of blocks used) and retire it.
fn gfetch_resolve(ctx: &Ctx, id: u32, used: bool) {
    let mut tallies = ctx.obs.lock_timed(ctx.gfetches, Ctr::LockWaitNsCache);
    let Some(g) = tallies.get_mut(&id) else { return };
    g.resolved += 1;
    if used {
        g.used += 1;
    }
    if g.resolved == g.fetched {
        let g = tallies.remove(&id).expect("checked above");
        drop(tallies);
        let pct = u64::from(g.used) * 100 / u64::from(g.fetched);
        ctx.obs.histos().group_fetch_util_pct.record(pct);
        ctx.obs.signal_sample(Sig::GroupFetchUtil, pct as f64);
        if let Some(cg) = g.cg {
            ctx.obs.cg_util_sample(cg, pct);
        }
    }
}

/// Write a collected dirty set back as one sorted, coalesced batch.
/// Physically adjacent dirty blocks — grouped small files — merge into
/// single scatter/gather writes here.
fn flush_batch(ctx: &Ctx, mut dirty: Vec<(u64, Vec<u8>)>) {
    ctx.obs.signal_sample(Sig::DirtyBacklog, dirty.len() as f64);
    if dirty.is_empty() {
        return;
    }
    dirty.sort_by_key(|(blk, _)| *blk);
    ctx.obs.add(Ctr::CacheWritebacks, dirty.len() as u64);
    ctx.obs.add(Ctr::CacheDelayedFlushes, dirty.len() as u64);
    // Count physically contiguous runs of 2+ blocks: each becomes one
    // scatter/gather write at the driver instead of N single writes.
    let mut run_len = 1u64;
    for w in dirty.windows(2) {
        if w[1].0 == w[0].0 + 1 {
            run_len += 1;
        } else {
            if run_len > 1 {
                ctx.obs.bump(Ctr::CacheCoalescedRuns);
            }
            run_len = 1;
        }
    }
    if run_len > 1 {
        ctx.obs.bump(Ctr::CacheCoalescedRuns);
    }
    let reqs = dirty
        .into_iter()
        .map(|(blk, data)| IoReq::write(blk * SECTORS_PER_BLOCK, data))
        .collect();
    ctx.driver.submit_batch(reqs);
}

impl CacheCore {
    fn new(nbufs: usize, flush_watermark_pct: u8) -> Self {
        CacheCore {
            nbufs,
            flush_watermark_pct,
            bufs: Vec::new(),
            free_slots: Vec::new(),
            phys: HashMap::new(),
            lru: BinaryHeap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn dirty_count(&self) -> usize {
        self.bufs.iter().flatten().filter(|b| b.dirty).count()
    }

    fn touch(&mut self, slot: usize) {
        self.tick += 1;
        if let Some(b) = &mut self.bufs[slot] {
            b.stamp = self.tick;
            self.lru.push(Reverse((self.tick, slot)));
        }
    }

    /// Find the buffer slot for a physical block, if resident.
    fn slot_of(&self, blkno: u64) -> Option<usize> {
        self.phys.get(&blkno).copied()
    }

    /// Collect this shard's dirty buffers (marking them clean) for a
    /// batch write-back.
    fn take_dirty(&mut self) -> Vec<(u64, Vec<u8>)> {
        let mut dirty = Vec::new();
        for b in self.bufs.iter_mut().flatten() {
            if b.dirty {
                dirty.push((b.blkno, b.data.clone()));
                b.dirty = false;
            }
        }
        self.stats.writebacks += dirty.len() as u64;
        dirty
    }

    /// Allocate a slot, evicting the LRU buffer if the shard is full.
    fn alloc_slot(&mut self, ctx: &Ctx) -> usize {
        if let Some(s) = self.free_slots.pop() {
            return s;
        }
        if self.bufs.len() < self.nbufs {
            self.bufs.push(None);
            return self.bufs.len() - 1;
        }
        // Update-daemon behaviour: under dirty pressure, flush everything
        // as one sorted, coalesced batch instead of dribbling single-block
        // write-backs out of the eviction path.
        let pct = self.flush_watermark_pct as usize;
        if pct < 100 && self.dirty_count() * 100 >= self.nbufs * pct {
            let dirty = self.take_dirty();
            flush_batch(ctx, dirty);
        }
        // Evict the true LRU (clean or dirty; dirty gets written back).
        loop {
            let Reverse((stamp, slot)) = self.lru.pop().expect("cache full but LRU empty");
            let Some(b) = &self.bufs[slot] else { continue };
            if b.stamp != stamp {
                continue; // stale heap entry
            }
            let b = self.bufs[slot].take().expect("checked above");
            self.phys.remove(&b.blkno);
            if let Some(id) = b.logical {
                unbind_entry(ctx, id, b.blkno);
            }
            if let Some(id) = b.gfetch {
                gfetch_wasted(ctx, id);
            }
            if b.dirty {
                ctx.driver.write(b.blkno * SECTORS_PER_BLOCK, &b.data);
                self.stats.writebacks += 1;
                ctx.obs.bump(Ctr::CacheWritebacks);
                ctx.obs.bump(Ctr::CacheDelayedFlushes);
            }
            self.stats.evictions += 1;
            ctx.obs.bump(Ctr::CacheEvictions);
            return slot;
        }
    }

    fn install(&mut self, slot: usize, buf: Buf) {
        let blkno = buf.blkno;
        self.bufs[slot] = Some(buf);
        self.phys.insert(blkno, slot);
        self.touch(slot);
    }

    /// Core miss/hit path: return the slot for `blkno`, reading from disk
    /// on a miss when `read` is set (otherwise installing a zero buffer).
    fn get_slot(&mut self, ctx: &Ctx, blkno: u64, read: bool) -> FsResult<usize> {
        self.stats.lookups += 1;
        ctx.obs.bump(Ctr::CacheLookups);
        if let Some(slot) = self.slot_of(blkno) {
            self.stats.phys_hits += 1;
            ctx.obs.bump(Ctr::CachePhysHits);
            self.touch(slot);
            self.gfetch_used(ctx, slot);
            return Ok(slot);
        }
        ctx.obs.bump(Ctr::CacheMisses);
        let mut data = vec![0u8; BLOCK_SIZE];
        if read {
            ctx.driver.read(blkno * SECTORS_PER_BLOCK, &mut data);
        }
        let slot = self.alloc_slot(ctx);
        self.install(
            slot,
            Buf { blkno, logical: None, data, dirty: false, meta: false, stamp: 0, gfetch: None },
        );
        Ok(slot)
    }

    /// A group-fetched buffer was hit for the first time: the speculation
    /// paid off. No-op for buffers that did not arrive via group fetch or
    /// were already counted.
    fn gfetch_used(&mut self, ctx: &Ctx, slot: usize) {
        let Some(b) = self.bufs[slot].as_mut() else { return };
        let Some(id) = b.gfetch.take() else { return };
        ctx.obs.bump(Ctr::GroupFetchBlocksUsed);
        gfetch_resolve(ctx, id, true);
    }

    /// Bind (or rebind) a resident buffer's logical identity, keeping the
    /// authoritative cache-wide map in step. Counts a back-bind when the
    /// buffer arrived identity-less from a group read.
    fn bind_slot(&mut self, ctx: &Ctx, slot: usize, ino: Ino, lbn: u64) {
        // Claiming a group-fetched buffer (back-binding) is a use.
        self.gfetch_used(ctx, slot);
        let b = self.bufs[slot].as_mut().expect("resident");
        let blkno = b.blkno;
        match b.logical {
            Some(id) if id == (ino, lbn) => {}
            old => {
                if old.is_none() {
                    self.stats.backbinds += 1;
                    ctx.obs.bump(Ctr::CacheBackbinds);
                }
                b.logical = Some((ino, lbn));
                let mut lm = ctx.obs.lock_timed(ctx.logical, Ctr::LockWaitNsCache);
                if let Some(oldid) = old {
                    if lm.get(&oldid) == Some(&blkno) {
                        lm.remove(&oldid);
                    }
                }
                lm.insert((ino, lbn), blkno);
            }
        }
    }

    /// Forget a resident block (invalidate) without any write-back.
    fn invalidate(&mut self, ctx: &Ctx, blkno: u64) {
        if let Some(slot) = self.phys.remove(&blkno) {
            if let Some(b) = self.bufs[slot].take() {
                if let Some(id) = b.logical {
                    unbind_entry(ctx, id, b.blkno);
                }
                if let Some(id) = b.gfetch {
                    gfetch_wasted(ctx, id);
                }
            }
            self.free_slots.push(slot);
        }
    }

    fn clear(&mut self) {
        self.bufs.clear();
        self.free_slots.clear();
        self.phys.clear();
        self.lru.clear();
    }
}

/// The dual-indexed, sharded buffer cache. All operations take `&self`;
/// the handle is `Send + Sync` and shared freely across threads.
#[derive(Debug)]
pub struct BufferCache {
    config: CacheConfig,
    map: Option<ShardMap>,
    shards: Vec<Mutex<CacheCore>>,
    /// Authoritative logical index: (ino, lbn) → physical block. The
    /// owning shard's buffer back-pointer validates each entry.
    logical: Mutex<HashMap<(Ino, u64), u64>>,
    /// In-flight group-fetch utilization accounting, fetch id → tally.
    /// An entry is dropped (and its utilization histogram sample
    /// recorded) once all of its blocks resolved as used or wasted.
    gfetches: Mutex<HashMap<u32, GroupFetch>>,
    next_gfetch: AtomicU32,
    /// Counters not attributable to one shard (logical-index misses,
    /// whole-cache group-read tallies).
    misc: Mutex<CacheStats>,
    /// Shared observability handle. Starts as a private instance; the
    /// file-system layer rebinds it to the disk's handle via [`set_obs`]
    /// so the whole stack reports into one [`StatsSnapshot`].
    ///
    /// [`set_obs`]: BufferCache::set_obs
    /// [`StatsSnapshot`]: cffs_obs::StatsSnapshot
    obs: Arc<Obs>,
}

impl BufferCache {
    /// Create an empty cache (one shard until [`shard_by_cg`] says
    /// otherwise).
    ///
    /// [`shard_by_cg`]: BufferCache::shard_by_cg
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.nbufs >= 8, "cache must hold at least 8 buffers");
        BufferCache {
            config,
            map: None,
            shards: vec![Mutex::new(CacheCore::new(config.nbufs, config.flush_watermark_pct))],
            logical: Mutex::new(HashMap::new()),
            gfetches: Mutex::new(HashMap::new()),
            next_gfetch: AtomicU32::new(0),
            misc: Mutex::new(CacheStats::default()),
            obs: Obs::new(),
        }
    }

    /// Split the cache into per-cylinder-group shards: block `b` belongs
    /// to CG `b / cg_blocks`, and CGs are distributed round-robin over
    /// `nshards` locks (capped so every shard keeps at least 8 buffers).
    /// Capacity divides evenly across shards. Must be called while the
    /// cache is empty — the file-system layer does it at mount, before
    /// the handle is shared.
    pub fn shard_by_cg(&mut self, cg_blocks: u64, nshards: usize) {
        assert!(cg_blocks >= 1, "cylinder group size must be positive");
        assert_eq!(self.resident(), 0, "cannot reshard a populated cache");
        let n = nshards.clamp(1, self.config.nbufs / 8);
        self.map = if n > 1 { Some(ShardMap { cg_blocks, nshards: n }) } else { None };
        let per_shard = self.config.nbufs / n;
        self.shards = (0..n)
            .map(|_| Mutex::new(CacheCore::new(per_shard, self.config.flush_watermark_pct)))
            .collect();
    }

    /// Number of shards the cache is split into.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, blkno: u64) -> usize {
        match self.map {
            Some(m) => ((blkno / m.cg_blocks) as usize) % m.nshards,
            None => 0,
        }
    }

    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, CacheCore> {
        self.obs.lock_timed(&self.shards[idx], Ctr::LockWaitNsCache)
    }

    fn ctx<'a>(&'a self, driver: &'a Driver) -> Ctx<'a> {
        Ctx { obs: &self.obs, driver, logical: &self.logical, gfetches: &self.gfetches }
    }

    /// Cumulative statistics (summed over shards).
    pub fn stats(&self) -> CacheStats {
        let mut total = *self.obs.lock_timed(&self.misc, Ctr::LockWaitNsCache);
        for shard in &self.shards {
            let s = self.obs.lock_timed(shard, Ctr::LockWaitNsCache).stats;
            total.lookups += s.lookups;
            total.phys_hits += s.phys_hits;
            total.logical_hits += s.logical_hits;
            total.backbinds += s.backbinds;
            total.evictions += s.evictions;
            total.writebacks += s.writebacks;
            total.sync_writes += s.sync_writes;
            total.group_reads += s.group_reads;
            total.group_read_blocks += s.group_read_blocks;
        }
        total
    }

    /// Rebind the observability handle (normally to `driver.obs()`, so
    /// cache counters land in the same registry as the disk's).
    pub fn set_obs(&mut self, obs: Arc<Obs>) {
        self.obs = obs;
    }

    /// The observability handle this cache reports into.
    pub fn obs(&self) -> Arc<Obs> {
        Arc::clone(&self.obs)
    }

    /// Reset statistics.
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            self.obs.lock_timed(shard, Ctr::LockWaitNsCache).stats = CacheStats::default();
        }
        *self.obs.lock_timed(&self.misc, Ctr::LockWaitNsCache) = CacheStats::default();
    }

    /// Number of resident buffers.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| self.obs.lock_timed(s, Ctr::LockWaitNsCache).phys.len()).sum()
    }

    /// Number of dirty buffers.
    pub fn dirty_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| self.obs.lock_timed(s, Ctr::LockWaitNsCache).dirty_count())
            .sum()
    }

    /// Is the block resident (for tests and group-read planning)?
    pub fn contains(&self, blkno: u64) -> bool {
        self.lock_shard(self.shard_of(blkno)).phys.contains_key(&blkno)
    }

    /// Look a block up by logical identity without touching the disk.
    /// Returns the physical block number on a hit — the caller skips the
    /// bmap translation entirely, which is the point of the second index.
    pub fn lookup_logical(&self, ino: Ino, lbn: u64) -> Option<u64> {
        self.obs.bump(Ctr::CacheLookups);
        // Read the authoritative map, release it, then validate against
        // the owning shard (never hold logical → shard; see lock order).
        let blk = {
            let lm = self.obs.lock_timed(&self.logical, Ctr::LockWaitNsCache);
            lm.get(&(ino, lbn)).copied()
        };
        let Some(blk) = blk else {
            self.obs.lock_timed(&self.misc, Ctr::LockWaitNsCache).lookups += 1;
            return None;
        };
        let mut core = self.lock_shard(self.shard_of(blk));
        core.stats.lookups += 1;
        match core.slot_of(blk) {
            Some(slot)
                if core.bufs[slot].as_ref().is_some_and(|b| b.logical == Some((ino, lbn))) =>
            {
                core.stats.logical_hits += 1;
                self.obs.bump(Ctr::CacheLogicalHits);
                core.touch(slot);
                Some(blk)
            }
            _ => None, // entry went stale between the two locks
        }
    }

    /// Read a block through the cache, returning a copy of its contents.
    pub fn read_block(&self, driver: &Driver, blkno: u64) -> FsResult<Vec<u8>> {
        let ctx = self.ctx(driver);
        let mut core = self.lock_shard(self.shard_of(blkno));
        let slot = core.get_slot(&ctx, blkno, true)?;
        Ok(core.bufs[slot].as_ref().expect("resident").data.clone())
    }

    /// Read a block and bind it to a logical identity in one step (the
    /// common file-read path: bmap said `(ino, lbn)` lives at `blkno`).
    pub fn read_block_bound(
        &self,
        driver: &Driver,
        blkno: u64,
        ino: Ino,
        lbn: u64,
    ) -> FsResult<Vec<u8>> {
        let ctx = self.ctx(driver);
        let mut core = self.lock_shard(self.shard_of(blkno));
        let slot = core.get_slot(&ctx, blkno, true)?;
        core.bind_slot(&ctx, slot, ino, lbn);
        Ok(core.bufs[slot].as_ref().expect("resident").data.clone())
    }

    /// Mutate a block in place. `read_first` controls whether a cache miss
    /// fetches the old contents (true for partial updates, false when the
    /// caller will overwrite the whole block). The buffer is left dirty;
    /// durability is the caller's policy decision.
    pub fn modify_block<R>(
        &self,
        driver: &Driver,
        blkno: u64,
        meta: bool,
        read_first: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> FsResult<R> {
        let ctx = self.ctx(driver);
        let mut core = self.lock_shard(self.shard_of(blkno));
        let slot = core.get_slot(&ctx, blkno, read_first)?;
        let b = core.bufs[slot].as_mut().expect("resident");
        b.dirty = true;
        b.meta = meta;
        Ok(f(&mut b.data))
    }

    /// Mutate a block and bind its logical identity (file-write path).
    pub fn modify_block_bound<R>(
        &self,
        driver: &Driver,
        blkno: u64,
        ino: Ino,
        lbn: u64,
        read_first: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> FsResult<R> {
        let ctx = self.ctx(driver);
        let mut core = self.lock_shard(self.shard_of(blkno));
        let slot = core.get_slot(&ctx, blkno, read_first)?;
        core.bind_slot(&ctx, slot, ino, lbn);
        let b = core.bufs[slot].as_mut().expect("resident");
        b.dirty = true;
        Ok(f(&mut b.data))
    }

    /// If `blkno` is dirty, write it to disk *now* and mark it clean. This
    /// is the synchronous-metadata primitive: the conventional create path
    /// calls it on the inode block before the directory block, and so on.
    pub fn flush_block_sync(&self, driver: &Driver, blkno: u64) -> FsResult<()> {
        let mut core = self.lock_shard(self.shard_of(blkno));
        if let Some(slot) = core.slot_of(blkno) {
            let b = core.bufs[slot].as_mut().expect("resident");
            if b.dirty {
                driver.write(blkno * SECTORS_PER_BLOCK, &b.data);
                b.dirty = false;
                core.stats.sync_writes += 1;
                self.obs.bump(Ctr::CacheSyncFlushes);
            }
        }
        Ok(())
    }

    /// Write only the 512-byte sector of `blkno` containing `offset`,
    /// synchronously. This is the embedded-inode atomicity primitive: a
    /// name and its inode live in the same sector, so one sector write
    /// updates both atomically (the disk guarantees sector atomicity).
    ///
    /// The rest of the block stays dirty if it was dirty before.
    pub fn flush_sector_sync(&self, driver: &Driver, blkno: u64, offset: usize) -> FsResult<()> {
        let sector_in_block = offset / cffs_disksim::SECTOR_SIZE;
        let mut core = self.lock_shard(self.shard_of(blkno));
        if let Some(slot) = core.slot_of(blkno) {
            let b = core.bufs[slot].as_ref().expect("resident");
            let lo = sector_in_block * cffs_disksim::SECTOR_SIZE;
            let hi = lo + cffs_disksim::SECTOR_SIZE;
            let sector = b.data[lo..hi].to_vec();
            driver.write(blkno * SECTORS_PER_BLOCK + sector_in_block as u64, &sector);
            core.stats.sync_writes += 1;
            self.obs.bump(Ctr::CacheSyncFlushes);
        }
        Ok(())
    }

    /// Bind (or rebind) the logical identity of a resident block. Counts a
    /// back-bind when the buffer arrived identity-less from a group read.
    pub fn bind_logical(&self, driver: &Driver, blkno: u64, ino: Ino, lbn: u64) {
        let ctx = self.ctx(driver);
        let mut core = self.lock_shard(self.shard_of(blkno));
        if let Some(slot) = core.slot_of(blkno) {
            core.bind_slot(&ctx, slot, ino, lbn);
        }
    }

    /// Drop every logical identity bound to `ino` (the inode number was
    /// retired — C-FFS renumbers embedded inodes on rename and
    /// externalization). Physical buffers stay resident; only the logical
    /// index entries go, so a future holder of the same number can never
    /// hit another file's stale bindings.
    pub fn purge_ino(&self, ino: Ino) {
        let entries: Vec<((Ino, u64), u64)> = {
            let mut lm = self.obs.lock_timed(&self.logical, Ctr::LockWaitNsCache);
            let keys: Vec<(Ino, u64)> = lm.keys().filter(|(i, _)| *i == ino).copied().collect();
            keys.into_iter().map(|k| (k, lm.remove(&k).expect("collected above"))).collect()
        };
        for (id, blk) in entries {
            let mut core = self.lock_shard(self.shard_of(blk));
            if let Some(slot) = core.slot_of(blk) {
                if let Some(b) = core.bufs[slot].as_mut() {
                    if b.logical == Some(id) {
                        b.logical = None;
                    }
                }
            }
        }
    }

    /// Drop the logical identity for `(ino, lbn)` (file truncate/delete).
    pub fn unbind_logical(&self, ino: Ino, lbn: u64) {
        let blk = self.obs.lock_timed(&self.logical, Ctr::LockWaitNsCache).remove(&(ino, lbn));
        if let Some(blk) = blk {
            let mut core = self.lock_shard(self.shard_of(blk));
            if let Some(slot) = core.slot_of(blk) {
                if let Some(b) = core.bufs[slot].as_mut() {
                    if b.logical == Some((ino, lbn)) {
                        b.logical = None;
                    }
                }
            }
        }
    }

    /// Relocation-aware rebinding: the regrouper is moving a block's
    /// storage from physical address `old` to `new`. If `old` is resident,
    /// its buffer — data, logical identity and all — is re-homed to `new`
    /// in place (no disk I/O) and marked dirty, since the contents now
    /// belong at the new address; any stale buffer already sitting at
    /// `new` is invalidated first. Returns `true` on success, `false` when
    /// `old` is not resident (the caller must copy through the disk
    /// instead). A group-fetched buffer that gets relocated counts as
    /// used: the speculative fetch delivered exactly the block the
    /// regrouper needed.
    pub fn relocate_phys(&self, driver: &Driver, old: u64, new: u64) -> bool {
        if old == new {
            return false;
        }
        let ctx = self.ctx(driver);
        let (so, sn) = (self.shard_of(old), self.shard_of(new));
        if so == sn {
            let mut core = self.lock_shard(so);
            if !core.phys.contains_key(&old) {
                return false;
            }
            core.invalidate(&ctx, new);
            let slot = core.phys.remove(&old).expect("checked resident");
            core.gfetch_used(&ctx, slot);
            let b = core.bufs[slot].as_mut().expect("resident");
            b.blkno = new;
            b.dirty = true;
            let id = b.logical;
            core.phys.insert(new, slot);
            core.touch(slot);
            if let Some(id) = id {
                let mut lm = self.obs.lock_timed(&self.logical, Ctr::LockWaitNsCache);
                if lm.get(&id) == Some(&old) {
                    lm.insert(id, new);
                }
            }
            return true;
        }
        // Cross-shard re-homing: take both shard locks in ascending
        // index order, lift the buffer out of the old shard and install
        // it into the new one.
        let (lo, hi) = (so.min(sn), so.max(sn));
        let mut g_lo = self.lock_shard(lo);
        let mut g_hi = self.lock_shard(hi);
        let (src, dst): (&mut CacheCore, &mut CacheCore) =
            if so == lo { (&mut g_lo, &mut g_hi) } else { (&mut g_hi, &mut g_lo) };
        let Some(slot) = src.phys.remove(&old) else { return false };
        src.gfetch_used(&ctx, slot);
        let mut b = src.bufs[slot].take().expect("resident");
        src.free_slots.push(slot);
        dst.invalidate(&ctx, new);
        b.blkno = new;
        b.dirty = true;
        b.stamp = 0;
        let id = b.logical;
        let dslot = dst.alloc_slot(&ctx);
        dst.install(dslot, b);
        if let Some(id) = id {
            let mut lm = self.obs.lock_timed(&self.logical, Ctr::LockWaitNsCache);
            if lm.get(&id) == Some(&old) {
                lm.insert(id, new);
            }
        }
        true
    }

    /// Forget a block entirely (its disk space was freed). Dirty contents
    /// are discarded — writing a freed block back would be a bug.
    pub fn invalidate_block(&self, driver: &Driver, blkno: u64) {
        let ctx = self.ctx(driver);
        let mut core = self.lock_shard(self.shard_of(blkno));
        core.invalidate(&ctx, blkno);
    }

    /// Fetch a set of contiguous block runs as *one* batch of scatter/gather
    /// reads — the explicit-grouping read path. Runs must be disjoint.
    /// Blocks already resident are skipped (never clobber a dirty buffer).
    /// Newly inserted blocks carry no logical identity; files claim them
    /// later via back-binding.
    pub fn read_group(&self, driver: &Driver, runs: &[(u64, usize)]) -> FsResult<()> {
        let ctx = self.ctx(driver);
        let mut reqs: Vec<IoReq> = Vec::new();
        for &(start, n) in runs {
            // Split each run at resident blocks.
            let mut run_start: Option<u64> = None;
            for blk in start..start + n as u64 {
                if self.contains(blk) {
                    if let Some(s) = run_start.take() {
                        reqs.push(IoReq::read(s * SECTORS_PER_BLOCK, (blk - s) as usize * BLOCK_SIZE));
                    }
                } else if run_start.is_none() {
                    run_start = Some(blk);
                }
            }
            if let Some(s) = run_start {
                let end = start + n as u64;
                reqs.push(IoReq::read(s * SECTORS_PER_BLOCK, (end - s) as usize * BLOCK_SIZE));
            }
        }
        if reqs.is_empty() {
            return Ok(());
        }
        let done = driver.submit_batch(reqs);
        self.obs.lock_timed(&self.misc, Ctr::LockWaitNsCache).group_reads += 1;
        self.obs.bump(Ctr::CacheGroupReads);
        let fetch_id = self.next_gfetch.fetch_add(1, Ordering::Relaxed);
        // Register the tally before installing: with a tiny cache,
        // installing later blocks of the fetch can evict earlier ones,
        // and their "wasted" resolution must find the entry.
        let fetched: u32 = done.iter().map(|r| (r.data.len() / BLOCK_SIZE) as u32).sum();
        let cg = done.first().and_then(|r| self.obs.cg_of_sector(r.lba));
        self.obs
            .lock_timed(&self.gfetches, Ctr::LockWaitNsCache)
            .insert(fetch_id, GroupFetch { fetched, resolved: 0, used: 0, cg });
        // Install every fetched block, identity-less. Block numbers come
        // from the requests themselves — the scheduler may have serviced
        // them in any order.
        let mut installed = 0u64;
        for req in done {
            let base = req.lba / SECTORS_PER_BLOCK;
            let nblocks = req.data.len() / BLOCK_SIZE;
            for i in 0..nblocks {
                let blk = base + i as u64;
                let mut core = self.lock_shard(self.shard_of(blk));
                if core.phys.contains_key(&blk) {
                    // A concurrent installer beat us to this block; the
                    // speculative copy is dropped, which is a waste.
                    drop(core);
                    gfetch_wasted(&ctx, fetch_id);
                    continue;
                }
                let slot = core.alloc_slot(&ctx);
                core.install(
                    slot,
                    Buf {
                        blkno: blk,
                        logical: None,
                        data: req.data[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE].to_vec(),
                        dirty: false,
                        meta: false,
                        stamp: 0,
                        gfetch: Some(fetch_id),
                    },
                );
                installed += 1;
                self.obs.bump(Ctr::CacheGroupReadBlocks);
            }
        }
        self.obs.lock_timed(&self.misc, Ctr::LockWaitNsCache).group_read_blocks += installed;
        Ok(())
    }

    /// Write back every dirty buffer as one scheduled, coalesced batch.
    /// Physically adjacent dirty blocks — grouped small files — merge into
    /// single scatter/gather writes here.
    pub fn sync(&self, driver: &Driver) -> FsResult<()> {
        let ctx = self.ctx(driver);
        let mut dirty: Vec<(u64, Vec<u8>)> = Vec::new();
        for shard in &self.shards {
            let mut core = self.obs.lock_timed(shard, Ctr::LockWaitNsCache);
            dirty.append(&mut core.take_dirty());
        }
        flush_batch(&ctx, dirty);
        Ok(())
    }

    /// Sync, then drop *all* buffers: the cold-cache boundary between
    /// benchmark phases (the moral equivalent of unmount + mount).
    pub fn drop_all(&self, driver: &Driver) -> FsResult<()> {
        self.sync(driver)?;
        let ctx = self.ctx(driver);
        for shard in &self.shards {
            let mut core = self.obs.lock_timed(shard, Ctr::LockWaitNsCache);
            // Every still-untouched group-fetched buffer leaves the cache
            // here: resolve them as wasted so in-flight fetch tallies settle
            // (this is what makes `used + wasted == fetched` hold at every
            // cold-cache boundary).
            let pending: Vec<u32> = core.bufs.iter().flatten().filter_map(|b| b.gfetch).collect();
            for id in pending {
                gfetch_wasted(&ctx, id);
            }
            // One hit-rate sample per shard per cold boundary: uneven
            // shard rates are the signature of a skewed workload.
            let hits = core.stats.phys_hits + core.stats.logical_hits;
            if let Some(pct) = (hits * 100).checked_div(core.stats.lookups) {
                self.obs.histos().cache_shard_hit_pct.record(pct);
            }
            core.clear();
        }
        self.obs.lock_timed(&self.logical, Ctr::LockWaitNsCache).clear();
        Ok(())
    }

    /// Discard every buffer *without* writing dirty data — simulates a
    /// crash. The disk image is left exactly as the write history produced
    /// it; fsck gets to pick up the pieces.
    pub fn crash(&self) {
        for shard in &self.shards {
            self.obs.lock_timed(shard, Ctr::LockWaitNsCache).clear();
        }
        self.obs.lock_timed(&self.logical, Ctr::LockWaitNsCache).clear();
        // A crash is not an eviction: abandon in-flight utilization
        // accounting rather than charging the lost buffers as "wasted".
        self.obs.lock_timed(&self.gfetches, Ctr::LockWaitNsCache).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_disksim::{models, Disk, DriverConfig};

    fn driver() -> Driver {
        Driver::new(Disk::new(models::seagate_st31200()), DriverConfig::default())
    }

    fn small_cache() -> BufferCache {
        BufferCache::new(CacheConfig { nbufs: 8, flush_watermark_pct: 100 })
    }

    #[test]
    fn read_miss_then_hit() {
        let drv = driver();
        let c = small_cache();
        drv.with_disk_mut(|d| d.raw_write(100 * SECTORS_PER_BLOCK, &[7u8; BLOCK_SIZE]));
        let d = c.read_block(&drv, 100).unwrap();
        assert!(d.iter().all(|&b| b == 7));
        let before = drv.disk_stats().reads;
        let _ = c.read_block(&drv, 100).unwrap();
        assert_eq!(drv.disk_stats().reads, before, "second read must not hit the disk");
        assert_eq!(c.stats().phys_hits, 1);
    }

    #[test]
    fn modify_without_read_first_skips_disk() {
        let drv = driver();
        let c = small_cache();
        c.modify_block(&drv, 50, false, false, |d| d.fill(9)).unwrap();
        assert_eq!(drv.disk_stats().reads, 0);
        assert_eq!(c.dirty_count(), 1);
        c.sync(&drv).unwrap();
        assert_eq!(c.dirty_count(), 0);
        let mut back = vec![0u8; BLOCK_SIZE];
        drv.with_disk(|d| d.raw_read(50 * SECTORS_PER_BLOCK, &mut back));
        assert!(back.iter().all(|&b| b == 9));
    }

    #[test]
    fn sync_coalesces_adjacent_dirty_blocks() {
        let drv = driver();
        let c = BufferCache::new(CacheConfig { nbufs: 64, flush_watermark_pct: 100 });
        // A 16-block "group" of dirty buffers plus a loner far away.
        for blk in 1000..1016 {
            c.modify_block(&drv, blk, false, false, |d| d.fill(1)).unwrap();
        }
        c.modify_block(&drv, 50_000, false, false, |d| d.fill(2)).unwrap();
        c.sync(&drv).unwrap();
        assert_eq!(drv.stats().physical_requests, 2, "16 adjacent + 1 = 2 phys writes");
        assert_eq!(drv.stats().coalesced, 15);
    }

    #[test]
    fn sync_counts_coalesced_runs_in_shared_obs() {
        let drv = driver();
        let mut c = BufferCache::new(CacheConfig { nbufs: 64, flush_watermark_pct: 100 });
        c.set_obs(drv.obs());
        // Two contiguous runs (4 and 2 blocks) plus two isolated loners.
        for blk in 1000..1004u64 {
            c.modify_block(&drv, blk, false, false, |d| d.fill(1)).unwrap();
        }
        for blk in 2000..2002u64 {
            c.modify_block(&drv, blk, false, false, |d| d.fill(2)).unwrap();
        }
        c.modify_block(&drv, 5000, false, false, |d| d.fill(3)).unwrap();
        c.modify_block(&drv, 60_000, false, false, |d| d.fill(4)).unwrap();
        c.sync(&drv).unwrap();
        let obs = drv.obs();
        assert_eq!(obs.get(Ctr::CacheWritebacks), 8);
        assert_eq!(obs.get(Ctr::CacheCoalescedRuns), 2, "two runs of >= 2 blocks");
        // The driver saw the same picture: 4 physical writes carrying 8
        // scatter/gather segments, 4 logical requests merged away.
        assert_eq!(obs.get(Ctr::DriverPhysicalRequests), 4);
        assert_eq!(obs.get(Ctr::DriverSgSegments), 8);
        assert_eq!(obs.get(Ctr::DriverCoalesced), 4);
        assert_eq!(drv.stats().physical_requests, 4);
    }

    #[test]
    fn sync_counts_run_ending_at_list_tail() {
        // Regression guard for the classic off-by-one: a contiguous run that
        // ends at the *last* element of the sorted dirty list must still be
        // counted (the loop only closes runs on a discontinuity).
        let drv = driver();
        let mut c = BufferCache::new(CacheConfig { nbufs: 64, flush_watermark_pct: 100 });
        c.set_obs(drv.obs());
        c.modify_block(&drv, 10, false, false, |d| d.fill(9)).unwrap();
        for blk in 100..103u64 {
            c.modify_block(&drv, blk, false, false, |d| d.fill(9)).unwrap();
        }
        c.sync(&drv).unwrap();
        let obs = drv.obs();
        assert_eq!(obs.get(Ctr::CacheCoalescedRuns), 1, "tail run [100..103) counts");
        assert_eq!(obs.get(Ctr::DriverPhysicalRequests), 2);

        // And a pair at the *head* of the list, loner at the tail.
        let drv = driver();
        let mut c = BufferCache::new(CacheConfig { nbufs: 64, flush_watermark_pct: 100 });
        c.set_obs(drv.obs());
        c.modify_block(&drv, 20, false, false, |d| d.fill(9)).unwrap();
        c.modify_block(&drv, 21, false, false, |d| d.fill(9)).unwrap();
        c.modify_block(&drv, 900, false, false, |d| d.fill(9)).unwrap();
        c.sync(&drv).unwrap();
        assert_eq!(drv.obs().get(Ctr::CacheCoalescedRuns), 1, "head run [20..22) counts");
        assert_eq!(drv.obs().get(Ctr::DriverPhysicalRequests), 2);
    }

    #[test]
    fn flush_block_sync_writes_once() {
        let drv = driver();
        let c = small_cache();
        c.modify_block(&drv, 10, true, false, |d| d.fill(3)).unwrap();
        c.flush_block_sync(&drv, 10).unwrap();
        assert_eq!(c.stats().sync_writes, 1);
        assert_eq!(drv.disk_stats().writes, 1);
        // Clean now: second flush is a no-op.
        c.flush_block_sync(&drv, 10).unwrap();
        assert_eq!(drv.disk_stats().writes, 1);
        c.sync(&drv).unwrap();
        assert_eq!(drv.disk_stats().writes, 1, "already clean");
    }

    #[test]
    fn flush_sector_sync_writes_single_sector() {
        let drv = driver();
        let c = small_cache();
        c.modify_block(&drv, 20, true, false, |d| d.fill(0xAB)).unwrap();
        c.flush_sector_sync(&drv, 20, 1024).unwrap();
        assert_eq!(drv.disk_stats().sectors_written, 1);
        let mut sec = vec![0u8; 512];
        drv.with_disk(|d| d.raw_read(20 * SECTORS_PER_BLOCK + 2, &mut sec));
        assert!(sec.iter().all(|&b| b == 0xAB));
        // Neighboring sector not written.
        drv.with_disk(|d| d.raw_read(20 * SECTORS_PER_BLOCK, &mut sec));
        assert!(sec.iter().all(|&b| b == 0));
    }

    #[test]
    fn lru_eviction_writes_dirty_victim() {
        let drv = driver();
        let c = small_cache(); // 8 buffers
        c.modify_block(&drv, 0, false, false, |d| d.fill(0xEE)).unwrap();
        for blk in 1..9 {
            let _ = c.read_block(&drv, blk).unwrap();
        }
        // Block 0 (LRU, dirty) must have been evicted and written back.
        assert!(!c.contains(0));
        let mut back = vec![0u8; BLOCK_SIZE];
        drv.with_disk(|d| d.raw_read(0, &mut back));
        assert!(back.iter().all(|&b| b == 0xEE));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn group_read_is_one_physical_request() {
        let drv = driver();
        let c = BufferCache::new(CacheConfig { nbufs: 64, flush_watermark_pct: 100 });
        for blk in 200..216u64 {
            drv.with_disk_mut(|d| d.raw_write(blk * SECTORS_PER_BLOCK, &vec![blk as u8; BLOCK_SIZE]));
        }
        c.read_group(&drv, &[(200, 16)]).unwrap();
        assert_eq!(drv.disk_stats().reads, 1);
        assert_eq!(c.stats().group_reads, 1);
        assert_eq!(c.stats().group_read_blocks, 16);
        // All 16 now hit without further I/O.
        for blk in 200..216 {
            let d = c.read_block(&drv, blk).unwrap();
            assert_eq!(d[0], blk as u8);
        }
        assert_eq!(drv.disk_stats().reads, 1);
    }

    #[test]
    fn group_read_skips_resident_dirty_blocks() {
        let drv = driver();
        let c = BufferCache::new(CacheConfig { nbufs: 64, flush_watermark_pct: 100 });
        c.modify_block(&drv, 205, false, false, |d| d.fill(0x77)).unwrap();
        c.read_group(&drv, &[(200, 16)]).unwrap();
        // The dirty buffer must survive untouched.
        let d = c.read_block(&drv, 205).unwrap();
        assert!(d.iter().all(|&b| b == 0x77));
        // Two physical reads: [200..205) and [206..216).
        assert_eq!(drv.disk_stats().reads, 2);
    }

    #[test]
    fn backbinding_after_group_read() {
        let drv = driver();
        let c = BufferCache::new(CacheConfig { nbufs: 64, flush_watermark_pct: 100 });
        c.read_group(&drv, &[(300, 4)]).unwrap();
        assert_eq!(c.stats().backbinds, 0);
        // File 42 claims block 301 as its lbn 0.
        let _ = c.read_block_bound(&drv, 301, 42, 0).unwrap();
        assert_eq!(c.stats().backbinds, 1);
        assert_eq!(c.lookup_logical(42, 0), Some(301));
        // Rebinding the same identity is not another back-bind.
        let _ = c.read_block_bound(&drv, 301, 42, 0).unwrap();
        assert_eq!(c.stats().backbinds, 1);
    }

    #[test]
    fn group_fetch_utilization_used_plus_wasted_equals_fetched() {
        use cffs_obs::Ctr;
        let drv = driver();
        let c = BufferCache::new(CacheConfig { nbufs: 64, flush_watermark_pct: 100 });
        c.read_group(&drv, &[(200, 16)]).unwrap();
        let obs = c.obs();
        assert_eq!(obs.get(Ctr::GroupFetchBlocksUsed), 0);
        // Hit 5 of the 16: two via physical reads, three via back-binding.
        for blk in 200..202 {
            let _ = c.read_block(&drv, blk).unwrap();
        }
        for (i, blk) in (202..205).enumerate() {
            let _ = c.read_block_bound(&drv, blk, 9, i as u64).unwrap();
        }
        // Re-hitting a block must not double-count.
        let _ = c.read_block(&drv, 200).unwrap();
        assert_eq!(obs.get(Ctr::GroupFetchBlocksUsed), 5);
        assert_eq!(obs.get(Ctr::GroupFetchBlocksWasted), 0);
        // Fetch still unresolved: no utilization sample yet.
        assert_eq!(obs.histos().group_fetch_util_pct.snapshot().count(), 0);
        // Cold boundary resolves the remaining 11 as wasted and settles
        // the fetch: used + wasted == blocks fetched.
        c.drop_all(&drv).unwrap();
        assert_eq!(obs.get(Ctr::GroupFetchBlocksUsed), 5);
        assert_eq!(obs.get(Ctr::GroupFetchBlocksWasted), 11);
        assert_eq!(
            obs.get(Ctr::GroupFetchBlocksUsed) + obs.get(Ctr::GroupFetchBlocksWasted),
            obs.get(Ctr::CacheGroupReadBlocks)
        );
        let util = obs.histos().group_fetch_util_pct.snapshot();
        assert_eq!(util.count(), 1);
        assert_eq!(util.sum, 5 * 100 / 16, "one sample: 31% of the fetch used");
    }

    #[test]
    fn group_fetch_eviction_counts_untouched_blocks_as_wasted() {
        use cffs_obs::Ctr;
        let drv = driver();
        // 8-buffer cache, 8-block fetch: reading 8 other blocks evicts
        // the whole untouched fetch.
        let c = small_cache();
        c.read_group(&drv, &[(100, 8)]).unwrap();
        for blk in 500..508 {
            let _ = c.read_block(&drv, blk).unwrap();
        }
        let obs = c.obs();
        assert_eq!(obs.get(Ctr::GroupFetchBlocksUsed), 0);
        assert_eq!(obs.get(Ctr::GroupFetchBlocksWasted), 8);
        let util = obs.histos().group_fetch_util_pct.snapshot();
        assert_eq!(util.count(), 1);
        assert_eq!(util.sum, 0, "fully wasted fetch records 0% utilization");
    }

    #[test]
    fn logical_lookup_miss_and_unbind() {
        let drv = driver();
        let c = small_cache();
        assert_eq!(c.lookup_logical(1, 0), None);
        let _ = c.read_block_bound(&drv, 77, 1, 0).unwrap();
        assert_eq!(c.lookup_logical(1, 0), Some(77));
        c.unbind_logical(1, 0);
        assert_eq!(c.lookup_logical(1, 0), None);
        // Physical identity still resident.
        assert!(c.contains(77));
    }

    #[test]
    fn invalidate_discards_dirty_data() {
        let drv = driver();
        let c = small_cache();
        c.modify_block(&drv, 33, false, false, |d| d.fill(5)).unwrap();
        c.invalidate_block(&drv, 33);
        c.sync(&drv).unwrap();
        assert_eq!(drv.disk_stats().writes, 0, "freed block must not be written");
    }

    #[test]
    fn crash_loses_unsynced_writes() {
        let drv = driver();
        let c = small_cache();
        c.modify_block(&drv, 11, false, false, |d| d.fill(1)).unwrap();
        c.flush_block_sync(&drv, 11).unwrap();
        c.modify_block(&drv, 12, false, false, |d| d.fill(2)).unwrap();
        c.crash();
        let mut b = vec![0u8; BLOCK_SIZE];
        drv.with_disk(|d| d.raw_read(11 * SECTORS_PER_BLOCK, &mut b));
        assert!(b.iter().all(|&x| x == 1), "synced write survives the crash");
        drv.with_disk(|d| d.raw_read(12 * SECTORS_PER_BLOCK, &mut b));
        assert!(b.iter().all(|&x| x == 0), "delayed write is lost");
    }

    #[test]
    fn drop_all_flushes_then_empties() {
        let drv = driver();
        let c = small_cache();
        c.modify_block(&drv, 9, false, false, |d| d.fill(4)).unwrap();
        c.drop_all(&drv).unwrap();
        assert_eq!(c.resident(), 0);
        let mut b = vec![0u8; BLOCK_SIZE];
        drv.with_disk(|d| d.raw_read(9 * SECTORS_PER_BLOCK, &mut b));
        assert!(b.iter().all(|&x| x == 4));
    }

    #[test]
    fn rebind_moves_identity() {
        let drv = driver();
        let c = small_cache();
        let _ = c.read_block_bound(&drv, 60, 5, 0).unwrap();
        // The file's block moved (e.g. degrouping relocated it) — same
        // identity now maps to block 61.
        let _ = c.read_block_bound(&drv, 61, 5, 0).unwrap();
        assert_eq!(c.lookup_logical(5, 0), Some(61));
    }

    #[test]
    fn relocate_phys_rehomes_resident_buffer() {
        let drv = driver();
        let c = small_cache();
        drv.with_disk_mut(|d| d.raw_write(70 * SECTORS_PER_BLOCK, &[0xAB; BLOCK_SIZE]));
        let _ = c.read_block(&drv, 70).unwrap();
        assert!(c.relocate_phys(&drv, 70, 71));
        // The buffer answers under its new address, dirty, with the old
        // contents; the old address is gone from the index.
        assert!(!c.contains(70));
        assert!(c.contains(71));
        assert_eq!(c.read_block(&drv, 71).unwrap()[0], 0xAB);
        c.flush_block_sync(&drv, 71).unwrap();
        let mut out = [0u8; BLOCK_SIZE];
        drv.with_disk(|d| d.raw_read(71 * SECTORS_PER_BLOCK, &mut out));
        assert_eq!(out[0], 0xAB);
    }

    #[test]
    fn relocate_phys_misses_cold_blocks() {
        let drv = driver();
        let c = small_cache();
        assert!(!c.relocate_phys(&drv, 80, 81));
        let _ = c.read_block(&drv, 80).unwrap();
        // Relocating onto itself is a no-op.
        assert!(!c.relocate_phys(&drv, 80, 80));
        assert!(c.contains(80));
    }

    #[test]
    fn sharded_cache_keeps_cg_blocks_in_one_shard() {
        let drv = driver();
        let mut c = BufferCache::new(CacheConfig { nbufs: 64, flush_watermark_pct: 100 });
        c.shard_by_cg(16, 4);
        assert_eq!(c.nshards(), 4);
        // Blocks 0..16 (CG 0) and 16..32 (CG 1) land in different shards;
        // contents stay transparent either way.
        for blk in 0..32u64 {
            c.modify_block(&drv, blk, false, false, |d| d.fill(blk as u8)).unwrap();
        }
        assert_eq!(c.resident(), 32);
        assert_eq!(c.dirty_count(), 32);
        c.sync(&drv).unwrap();
        assert_eq!(c.dirty_count(), 0);
        for blk in 0..32u64 {
            assert_eq!(c.read_block(&drv, blk).unwrap()[0], blk as u8);
        }
        assert_eq!(c.stats().writebacks, 32);
    }

    #[test]
    fn sharded_relocate_crosses_shards() {
        let drv = driver();
        let mut c = BufferCache::new(CacheConfig { nbufs: 64, flush_watermark_pct: 100 });
        c.shard_by_cg(16, 4);
        let _ = c.read_block_bound(&drv, 3, 9, 0).unwrap();
        // Block 3 (CG 0, shard 0) relocates to block 20 (CG 1, shard 1).
        assert!(c.relocate_phys(&drv, 3, 20));
        assert!(!c.contains(3));
        assert!(c.contains(20));
        assert_eq!(c.lookup_logical(9, 0), Some(20), "identity follows the move");
        assert_eq!(c.dirty_count(), 1, "re-homed buffer is dirty");
    }

    #[test]
    fn sharded_drop_all_samples_per_shard_hit_rates() {
        let drv = driver();
        let mut c = BufferCache::new(CacheConfig { nbufs: 64, flush_watermark_pct: 100 });
        c.shard_by_cg(16, 2);
        // Shard of CG 0: one miss then three hits; shard of CG 1: one miss.
        for _ in 0..4 {
            let _ = c.read_block(&drv, 1).unwrap();
        }
        let _ = c.read_block(&drv, 17).unwrap();
        c.drop_all(&drv).unwrap();
        let snap = c.obs().histos().cache_shard_hit_pct.snapshot();
        assert_eq!(snap.count(), 2, "one sample per shard that saw lookups");
        assert_eq!(snap.sum, 75, "75% + 0%");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use cffs_disksim::{models, Disk, DriverConfig};
    use proptest::prelude::*;
    use proptest::TestCaseError;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum CacheOp {
        Read(u64),
        Write(u64, u8),
        WriteBound(u64, u64, u64, u8), // blk, ino, lbn, byte
        FlushSync(u64),
        Sync,
        DropAll,
        Invalidate(u64),
        GroupRead(u64, u8),
        PurgeIno(u64),
    }

    fn arb_op() -> impl Strategy<Value = CacheOp> {
        prop_oneof![
            4 => (0u64..64).prop_map(CacheOp::Read),
            4 => (0u64..64, any::<u8>()).prop_map(|(b, v)| CacheOp::Write(b, v)),
            3 => (0u64..64, 0u64..6, 0u64..8, any::<u8>())
                .prop_map(|(b, i, l, v)| CacheOp::WriteBound(b, i, l, v)),
            2 => (0u64..64).prop_map(CacheOp::FlushSync),
            1 => Just(CacheOp::Sync),
            1 => Just(CacheOp::DropAll),
            1 => (0u64..64).prop_map(CacheOp::Invalidate),
            2 => (0u64..48, 1u8..16).prop_map(|(b, n)| CacheOp::GroupRead(b, n)),
            1 => (0u64..6).prop_map(CacheOp::PurgeIno),
        ]
    }

    /// Run the transparency model against a cache (sharded or not).
    fn check_transparent(
        cache: &BufferCache,
        drv: &Driver,
        ops: Vec<CacheOp>,
    ) -> Result<(), TestCaseError> {
        // model: block -> expected fill byte (0 = never written).
        let mut model: HashMap<u64, u8> = HashMap::new();
        // writes not yet durable (to emulate Invalidate discarding them)
        let mut dirty: HashMap<u64, u8> = HashMap::new();
        let mut durable: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                CacheOp::Read(b) => {
                    let data = cache.read_block(drv, b).unwrap();
                    let want = *model.get(&b).unwrap_or(&0);
                    prop_assert!(
                        data.iter().all(|&x| x == want),
                        "block {} read {} want {}", b, data[0], want
                    );
                }
                CacheOp::Write(b, v) => {
                    cache.modify_block(drv, b, false, false, |d| d.fill(v)).unwrap();
                    model.insert(b, v);
                    dirty.insert(b, v);
                }
                CacheOp::WriteBound(b, ino, lbn, v) => {
                    cache
                        .modify_block_bound(drv, b, ino, lbn, false, |d| d.fill(v))
                        .unwrap();
                    model.insert(b, v);
                    dirty.insert(b, v);
                }
                CacheOp::FlushSync(b) => {
                    cache.flush_block_sync(drv, b).unwrap();
                    if let Some(v) = dirty.remove(&b) {
                        durable.insert(b, v);
                    }
                }
                CacheOp::Sync => {
                    cache.sync(drv).unwrap();
                    durable.extend(dirty.drain());
                }
                CacheOp::DropAll => {
                    cache.drop_all(drv).unwrap();
                    durable.extend(dirty.drain());
                }
                CacheOp::Invalidate(b) => {
                    cache.invalidate_block(drv, b);
                    // Contract: dirty contents are discarded; the block
                    // reverts to its last durable contents.
                    dirty.remove(&b);
                    match durable.get(&b) {
                        Some(&v) => { model.insert(b, v); }
                        None => { model.remove(&b); }
                    }
                }
                CacheOp::GroupRead(start, n) => {
                    cache.read_group(drv, &[(start, n as usize)]).unwrap();
                }
                CacheOp::PurgeIno(ino) => cache.purge_ino(ino),
            }
            // NOTE: eviction may write dirty blocks back at any time,
            // which only *adds* durability; the model above tracks the
            // weakest guarantee, so reads are still exact.
            for (&b, &v) in dirty.iter() {
                if !cache.contains(b) {
                    // Evicted dirty block became durable.
                    durable.insert(b, v);
                }
            }
            dirty.retain(|&b, _| cache.contains(b));
        }
        // Final check: everything the model believes in reads back.
        for (&b, &v) in &model {
            let data = cache.read_block(drv, b).unwrap();
            prop_assert!(data.iter().all(|&x| x == v), "final block {}", b);
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// The cache is a transparent layer: block contents always match a
        /// simple model regardless of evictions, group reads, syncs and
        /// invalidations. (An invalidated dirty block loses its data by
        /// contract, so the model drops those writes too.)
        #[test]
        fn cache_is_transparent(ops in prop::collection::vec(arb_op(), 1..120)) {
            let drv = Driver::new(Disk::new(models::tiny_test_disk()), DriverConfig::default());
            let cache = BufferCache::new(CacheConfig { nbufs: 16, flush_watermark_pct: 50 });
            check_transparent(&cache, &drv, ops)?;
        }

        /// Same transparency contract with the cache split into four
        /// CG-keyed shards (the multi-threaded mount configuration).
        #[test]
        fn sharded_cache_is_transparent(ops in prop::collection::vec(arb_op(), 1..120)) {
            let drv = Driver::new(Disk::new(models::tiny_test_disk()), DriverConfig::default());
            let mut cache = BufferCache::new(CacheConfig { nbufs: 64, flush_watermark_pct: 50 });
            cache.shard_by_cg(16, 4);
            check_transparent(&cache, &drv, ops)?;
        }

        /// The logical index never lies: a hit always names a resident
        /// buffer whose physical number round-trips.
        #[test]
        fn dual_index_consistent(ops in prop::collection::vec(arb_op(), 1..100)) {
            let drv = Driver::new(Disk::new(models::tiny_test_disk()), DriverConfig::default());
            let cache = BufferCache::new(CacheConfig { nbufs: 12, flush_watermark_pct: 100 });
            let mut bound: HashMap<(u64, u64), u64> = HashMap::new();
            for op in ops {
                match op {
                    CacheOp::WriteBound(b, ino, lbn, v) => {
                        cache
                            .modify_block_bound(&drv, b, ino, lbn, false, |d| d.fill(v))
                            .unwrap();
                        bound.insert((ino, lbn), b);
                    }
                    CacheOp::Read(b) => {
                        let _ = cache.read_block(&drv, b).unwrap();
                    }
                    CacheOp::Invalidate(b) => {
                        cache.invalidate_block(&drv, b);
                        bound.retain(|_, &mut blk| blk != b);
                    }
                    CacheOp::PurgeIno(ino) => {
                        cache.purge_ino(ino);
                        bound.retain(|&(i, _), _| i != ino);
                    }
                    _ => {}
                }
                for (&(ino, lbn), &blk) in &bound {
                    if let Some(hit) = cache.lookup_logical(ino, lbn) {
                        prop_assert_eq!(hit, blk, "logical index stale for ({}, {})", ino, lbn);
                        prop_assert!(cache.contains(blk));
                    }
                }
            }
        }
    }
}

//! `cffs-dcache` — the buffer cache's namespace sibling: a sharded
//! directory-entry cache mapping `(parent ino, name)` to a child inode
//! number, with **negative entries** (cached `NotFound`) so repeated
//! probes for absent names — the dominant cost in create-if-absent and
//! path-probe patterns — skip the dirent scan entirely.
//!
//! Design points, following the full-path-hash dcache lineage:
//!
//! * **Full-path hashing.** The key hash folds the parent inode number
//!   into the name hash. Because the parent ino was itself produced by
//!   a (cached) lookup, the hash is effectively a hash of the whole
//!   path, one component at a time — no path strings are ever stored.
//! * **Sharding.** The hash picks one of a fixed set of shards, each
//!   behind its own mutex, so `ConcurrentFs` threads resolving disjoint
//!   names never contend. Shard locks are leaves in the file-system
//!   lock hierarchy (DESIGN.md §10): taken and released with no other
//!   lock acquired inside.
//! * **Bounded capacity, CLOCK eviction.** Each shard owns a fixed slot
//!   array swept by a clock hand; a probe sets the entry's referenced
//!   bit, the hand clears it, and only an unreferenced entry is evicted
//!   (second chance). Capacity is fixed at construction — a million-file
//!   tree cannot grow the cache without bound.
//! * **Precise invalidation.** The file-system layer invalidates exact
//!   `(parent, name)` keys on namespace mutations and purges by inode
//!   number when embedded-inode renumbering retires an ino. The cache
//!   itself never guesses.
//!
//! Observability: probes bump `dcache_hit` / `dcache_neg_hit` /
//! `dcache_miss`, evictions bump `dcache_evict`, and [`Dcache::clear`]
//! records each shard's epoch hit rate into the `dcache_hit_pct`
//! histogram, mirroring the buffer cache's `cache_shard_hit_pct`
//! cold-boundary sampling.

use cffs_fslib::Ino;
use cffs_obs::{Ctr, Obs};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// What a probe found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcacheAnswer {
    /// Positive entry: the name maps to this inode number.
    Pos(Ino),
    /// Negative entry: the name is known absent from the directory.
    Neg,
    /// No entry — the caller must scan the directory.
    Miss,
}

/// One cached dirent. `ino == None` is a negative entry.
struct Entry {
    dir: Ino,
    name: Box<str>,
    ino: Option<Ino>,
    referenced: bool,
}

/// One shard: a fixed slot array (the CLOCK ring) plus a hash index
/// into it, and the epoch hit/probe tallies for `dcache_hit_pct`.
struct Shard {
    slots: Vec<Option<Entry>>,
    index: HashMap<u64, Vec<usize>>,
    hand: usize,
    probes: u64,
    hits: u64,
}

impl Shard {
    fn new(cap: usize) -> Shard {
        Shard {
            slots: (0..cap).map(|_| None).collect(),
            index: HashMap::new(),
            hand: 0,
            probes: 0,
            hits: 0,
        }
    }

    fn find(&self, h: u64, dir: Ino, name: &str) -> Option<usize> {
        let idxs = self.index.get(&h)?;
        idxs.iter()
            .copied()
            .find(|&i| self.slots[i].as_ref().is_some_and(|e| e.dir == dir && &*e.name == name))
    }

    fn unindex(&mut self, h: u64, slot: usize) {
        if let Some(v) = self.index.get_mut(&h) {
            v.retain(|&i| i != slot);
            if v.is_empty() {
                self.index.remove(&h);
            }
        }
    }

    fn drop_slot(&mut self, slot: usize) {
        if let Some(e) = self.slots[slot].take() {
            let h = key_hash(e.dir, &e.name);
            self.unindex(h, slot);
        }
    }

    /// CLOCK sweep: free slots are taken immediately, referenced entries
    /// get a second chance, the first unreferenced entry is evicted.
    fn take_slot(&mut self, obs: &Obs) -> usize {
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            match &mut self.slots[i] {
                None => return i,
                Some(e) if e.referenced => e.referenced = false,
                Some(_) => {
                    self.drop_slot(i);
                    obs.bump(Ctr::DcacheEvictions);
                    return i;
                }
            }
        }
    }

    fn insert(&mut self, obs: &Obs, dir: Ino, name: &str, ino: Option<Ino>) {
        let h = key_hash(dir, name);
        if let Some(i) = self.find(h, dir, name) {
            let e = self.slots[i].as_mut().expect("indexed slot is occupied");
            e.ino = ino;
            e.referenced = true;
            return;
        }
        let i = self.take_slot(obs);
        self.slots[i] = Some(Entry { dir, name: name.into(), ino, referenced: true });
        self.index.entry(h).or_default().push(i);
    }
}

/// FNV-1a over the parent ino (little-endian) and the name bytes — the
/// incremental full-path hash described in the crate docs.
fn key_hash(dir: Ino, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in dir.to_le_bytes().into_iter().chain(name.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The sharded namespace cache. All methods take `&self`; each shard is
/// an independent leaf lock.
pub struct Dcache {
    shards: Vec<Mutex<Shard>>,
    /// Shared observability handle. Starts as a private instance; the
    /// file-system layer rebinds it to the stack's handle via
    /// [`set_obs`](Dcache::set_obs) at mount.
    obs: Arc<Obs>,
}

impl Dcache {
    /// A cache holding at most `entries` dirents (positive + negative),
    /// split over power-of-two-free shard count sized so every shard
    /// keeps a useful ring.
    pub fn new(entries: usize) -> Dcache {
        let entries = entries.max(1);
        let nshards = (entries / 64).clamp(1, 16);
        let per_shard = entries.div_ceil(nshards);
        Dcache {
            shards: (0..nshards).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            obs: Obs::new(),
        }
    }

    /// Rebind the observability handle (normally to the driver's, so
    /// dcache counters land in the same registry as the disk's).
    pub fn set_obs(&mut self, obs: Arc<Obs>) {
        self.obs = obs;
    }

    /// The observability handle this cache reports into.
    pub fn obs(&self) -> Arc<Obs> {
        Arc::clone(&self.obs)
    }

    /// Total capacity in entries (summed over shards).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.lock_shard(0).slots.len()
    }

    /// Live entries (positive + negative), summed over shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock_shard(i).slots.iter().filter(|s| s.is_some()).count())
            .sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, Shard> {
        self.obs.lock_timed(&self.shards[idx], Ctr::LockWaitNsCache)
    }

    fn shard_of(&self, h: u64) -> usize {
        (h % self.shards.len() as u64) as usize
    }

    /// Probe for `name` in directory `dir`, bumping the hit/miss
    /// counters and setting the CLOCK referenced bit on a hit.
    pub fn lookup(&self, dir: Ino, name: &str) -> DcacheAnswer {
        let h = key_hash(dir, name);
        let mut s = self.lock_shard(self.shard_of(h));
        s.probes += 1;
        match s.find(h, dir, name) {
            Some(i) => {
                s.hits += 1;
                let e = s.slots[i].as_mut().expect("indexed slot is occupied");
                e.referenced = true;
                match e.ino {
                    Some(ino) => {
                        self.obs.bump(Ctr::DcacheHits);
                        DcacheAnswer::Pos(ino)
                    }
                    None => {
                        self.obs.bump(Ctr::DcacheNegHits);
                        DcacheAnswer::Neg
                    }
                }
            }
            None => {
                self.obs.bump(Ctr::DcacheMisses);
                DcacheAnswer::Miss
            }
        }
    }

    /// Cache `dir/name -> ino`, replacing any existing (including
    /// negative) entry for the key.
    pub fn insert_pos(&self, dir: Ino, name: &str, ino: Ino) {
        let h = key_hash(dir, name);
        let obs = Arc::clone(&self.obs);
        self.lock_shard(self.shard_of(h)).insert(&obs, dir, name, Some(ino));
    }

    /// Cache `dir/name` as known-absent, replacing any existing entry.
    pub fn insert_neg(&self, dir: Ino, name: &str) {
        let h = key_hash(dir, name);
        let obs = Arc::clone(&self.obs);
        self.lock_shard(self.shard_of(h)).insert(&obs, dir, name, None);
    }

    /// Drop whatever is cached for `dir/name` (positive or negative).
    pub fn invalidate(&self, dir: Ino, name: &str) {
        let h = key_hash(dir, name);
        let mut s = self.lock_shard(self.shard_of(h));
        if let Some(i) = s.find(h, dir, name) {
            s.drop_slot(i);
        }
    }

    /// Drop every positive entry resolving to `ino` — the hook for
    /// embedded-inode renumbering and inode retirement, where the inode
    /// number itself dies. Scans all shards; renumbering is rare.
    pub fn purge_ino(&self, ino: Ino) {
        for idx in 0..self.shards.len() {
            let mut s = self.lock_shard(idx);
            for i in 0..s.slots.len() {
                if s.slots[i].as_ref().is_some_and(|e| e.ino == Some(ino)) {
                    s.drop_slot(i);
                }
            }
        }
    }

    /// Drop every entry (positive or negative) keyed under directory
    /// `dir` — the hook for directory renumbering, removal, and
    /// directory-block relocation.
    pub fn purge_dir(&self, dir: Ino) {
        for idx in 0..self.shards.len() {
            let mut s = self.lock_shard(idx);
            for i in 0..s.slots.len() {
                if s.slots[i].as_ref().is_some_and(|e| e.dir == dir) {
                    s.drop_slot(i);
                }
            }
        }
    }

    /// Empty the cache (the `drop_caches` cold boundary), recording each
    /// shard's epoch hit rate into the `dcache_hit_pct` histogram first.
    /// Shards that saw no probes this epoch record nothing.
    pub fn clear(&self) {
        for idx in 0..self.shards.len() {
            let mut s = self.lock_shard(idx);
            if let Some(pct) = (s.hits * 100).checked_div(s.probes) {
                self.obs.histos().dcache_hit_pct.record(pct);
            }
            let cap = s.slots.len();
            *s = Shard::new(cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(entries: usize) -> Dcache {
        Dcache::new(entries)
    }

    #[test]
    fn positive_and_negative_entries_round_trip() {
        let d = dc(128);
        assert_eq!(d.lookup(1, "a"), DcacheAnswer::Miss);
        d.insert_pos(1, "a", 42);
        d.insert_neg(1, "b");
        assert_eq!(d.lookup(1, "a"), DcacheAnswer::Pos(42));
        assert_eq!(d.lookup(1, "b"), DcacheAnswer::Neg);
        assert_eq!(d.lookup(2, "a"), DcacheAnswer::Miss, "keys include the parent");
        let o = d.obs();
        assert_eq!(o.get(Ctr::DcacheHits), 1);
        assert_eq!(o.get(Ctr::DcacheNegHits), 1);
        assert_eq!(o.get(Ctr::DcacheMisses), 2);
    }

    #[test]
    fn insert_replaces_and_invalidate_removes() {
        let d = dc(128);
        d.insert_neg(1, "a");
        d.insert_pos(1, "a", 7);
        assert_eq!(d.lookup(1, "a"), DcacheAnswer::Pos(7), "create kills the negative entry");
        d.invalidate(1, "a");
        assert_eq!(d.lookup(1, "a"), DcacheAnswer::Miss);
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn capacity_is_bounded_and_evictions_are_counted() {
        let d = dc(64); // one shard, 64 slots
        let cap = d.capacity();
        for i in 0..(cap as u64 * 3) {
            d.insert_pos(1, &format!("f{i}"), 100 + i);
        }
        assert_eq!(d.len(), cap, "the CLOCK ring never outgrows its slots");
        assert_eq!(d.obs().get(Ctr::DcacheEvictions), cap as u64 * 2);
    }

    #[test]
    fn clock_gives_referenced_entries_a_second_chance() {
        let d = dc(4); // one tiny shard
        let cap = d.capacity() as u64;
        for i in 0..cap {
            d.insert_pos(1, &format!("f{i}"), i);
        }
        // First overflow sweeps the ring (clearing every fresh referenced
        // bit) and evicts the oldest entry.
        d.insert_pos(1, "spill", 98);
        assert_eq!(d.lookup(1, "f0"), DcacheAnswer::Miss);
        // Re-reference f1; the next overflow must skip it and take f2.
        assert_eq!(d.lookup(1, "f1"), DcacheAnswer::Pos(1));
        d.insert_pos(1, "spill2", 99);
        assert_eq!(d.lookup(1, "f1"), DcacheAnswer::Pos(1), "referenced entry survives");
        assert_eq!(d.lookup(1, "f2"), DcacheAnswer::Miss, "unreferenced entry was evicted");
    }

    #[test]
    fn purge_ino_and_purge_dir_scrub_matching_entries() {
        let d = dc(128);
        d.insert_pos(1, "a", 10);
        d.insert_pos(1, "b", 11);
        d.insert_pos(2, "a", 10); // hard link: same ino, other dir
        d.insert_neg(2, "gone");
        d.purge_ino(10);
        assert_eq!(d.lookup(1, "a"), DcacheAnswer::Miss);
        assert_eq!(d.lookup(2, "a"), DcacheAnswer::Miss);
        assert_eq!(d.lookup(1, "b"), DcacheAnswer::Pos(11));
        d.purge_dir(2);
        assert_eq!(d.lookup(2, "gone"), DcacheAnswer::Miss);
        assert_eq!(d.lookup(1, "b"), DcacheAnswer::Pos(11));
    }

    #[test]
    fn clear_records_hit_pct_and_empties() {
        let d = dc(64); // one shard
        d.insert_pos(1, "a", 5);
        for _ in 0..9 {
            assert_eq!(d.lookup(1, "a"), DcacheAnswer::Pos(5));
        }
        assert_eq!(d.lookup(1, "x"), DcacheAnswer::Miss);
        d.clear();
        assert!(d.is_empty());
        let snap = d.obs().histos().dcache_hit_pct.snapshot();
        assert_eq!(snap.count(), 1, "one probed shard, one sample");
        assert_eq!(snap.sum, 90, "9 hits / 10 probes");
        // A cleared, unprobed epoch records nothing.
        d.clear();
        assert_eq!(d.obs().histos().dcache_hit_pct.snapshot().count(), 1);
    }
}

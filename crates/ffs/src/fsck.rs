//! Off-line file-system checker, in the spirit of `fsck` [McKusick94].
//!
//! Works directly on a disk image (timing-free raw access). Five phases,
//! echoing the classic program:
//!
//! 1. **Inodes**: parse every allocated slot in every inode table; validate
//!    sizes and collect claimed data/indirect blocks; detect blocks claimed
//!    twice or marked free in the bitmaps.
//! 2. **Namespace**: walk directories from the root; validate entries
//!    (must point at allocated inodes of the right kind) and count the
//!    references each inode receives.
//! 3. **Link counts**: compare the reference counts with stored `nlink`.
//! 4. **Orphans**: allocated inodes never referenced by any directory (the
//!    expected debris of a crash under the synchronous-ordering discipline,
//!    which leaks inodes rather than losing names).
//! 5. **Bitmaps**: compare on-disk bitmaps with the reachable block/inode
//!    sets.
//!
//! In repair mode the checker clears dangling entries and orphans, fixes
//! link counts and rewrites the bitmaps, then re-runs itself to verify the
//! image is clean.

use crate::layout::{CgHeader, Superblock, INO_BAD, INO_NIL, INO_ROOT, SB_BLOCK};
use cffs_disksim::Disk;
use cffs_fslib::inode::{Inode, NDIRECT, NO_BLOCK, PTRS_PER_BLOCK};
use cffs_fslib::{FileKind, FsError, FsResult, BLOCK_SIZE, SECTORS_PER_BLOCK};
use std::collections::HashMap;

/// Outcome of a check (and optional repair).
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Problems detected in the image as presented.
    pub errors: Vec<String>,
    /// Actions taken (repair mode only).
    pub repairs: Vec<String>,
}

impl FsckReport {
    /// True if the image had no inconsistencies.
    pub fn clean(&self) -> bool {
        self.errors.is_empty()
    }
}

fn read_block(disk: &Disk, blk: u64) -> Vec<u8> {
    let mut buf = vec![0u8; BLOCK_SIZE];
    disk.raw_read(blk * SECTORS_PER_BLOCK, &mut buf);
    buf
}

fn write_block(disk: &mut Disk, blk: u64, data: &[u8]) {
    disk.raw_write(blk * SECTORS_PER_BLOCK, data);
}

struct Checker<'d> {
    disk: &'d mut Disk,
    sb: Superblock,
    report: FsckReport,
    /// blk -> first owner inode (for duplicate detection).
    block_owner: HashMap<u64, u64>,
    /// ino -> (inode, namespace reference count).
    inodes: HashMap<u64, (Inode, u32)>,
    repair: bool,
}

/// Check (and with `repair`, fix) the FFS image on `disk`.
pub fn fsck(disk: &mut Disk, repair: bool) -> FsResult<FsckReport> {
    let sb = Superblock::read_from(&read_block(disk, SB_BLOCK))?;
    let mut c = Checker {
        disk,
        sb,
        report: FsckReport::default(),
        block_owner: HashMap::new(),
        inodes: HashMap::new(),
        repair,
    };
    c.phase1_inodes()?;
    c.phase2_namespace()?;
    c.phase3_link_counts()?;
    c.phase4_orphans()?;
    c.phase5_bitmaps()?;
    if repair && !c.report.errors.is_empty() {
        // Verify the repaired image.
        let verify = fsck(c.disk, false)?;
        if !verify.clean() {
            return Err(FsError::Corrupt(format!(
                "repair failed to converge: {:?}",
                verify.errors
            )));
        }
    }
    Ok(c.report)
}

impl Checker<'_> {
    fn claim_block(&mut self, ino: u64, blk: u64) {
        if blk == 0 || blk >= self.sb.total_blocks {
            self.report.errors.push(format!("inode {ino} references invalid block {blk}"));
            return;
        }
        if let Some(prev) = self.block_owner.insert(blk, ino) {
            self.report
                .errors
                .push(format!("block {blk} claimed by inodes {prev} and {ino}"));
        }
    }

    fn phase1_inodes(&mut self) -> FsResult<()> {
        for cg in 0..self.sb.cg_count {
            for i in 0..self.sb.inodes_per_cg as u64 {
                let ino = cg as u64 * self.sb.inodes_per_cg as u64 + i;
                if ino == INO_NIL || ino == INO_BAD {
                    continue;
                }
                let (blk, off) = self.sb.inode_location(ino)?;
                let img = read_block(self.disk, blk);
                let Some(inode) = Inode::read_from(&img, off) else { continue };
                // Claim this inode's blocks.
                let direct = inode.direct;
                for d in direct.into_iter().filter(|&d| d != NO_BLOCK) {
                    self.claim_block(ino, d as u64);
                }
                if inode.indirect != NO_BLOCK {
                    let ind = inode.indirect as u64;
                    self.claim_block(ino, ind);
                    self.claim_indirect(ino, ind);
                }
                if inode.dindirect != NO_BLOCK {
                    let dind = inode.dindirect as u64;
                    self.claim_block(ino, dind);
                    let data = read_block(self.disk, dind);
                    for j in 0..PTRS_PER_BLOCK {
                        let mid = cffs_fslib::codec::get_u32(&data, j * 4);
                        if mid != NO_BLOCK {
                            self.claim_block(ino, mid as u64);
                            self.claim_indirect(ino, mid as u64);
                        }
                    }
                }
                self.inodes.insert(ino, (inode, 0));
            }
        }
        Ok(())
    }

    fn claim_indirect(&mut self, ino: u64, ind: u64) {
        let data = read_block(self.disk, ind);
        for j in 0..PTRS_PER_BLOCK {
            let p = cffs_fslib::codec::get_u32(&data, j * 4);
            if p != NO_BLOCK {
                self.claim_block(ino, p as u64);
            }
        }
    }

    /// Enumerate a file's mapped blocks in logical order (phase 2 helper).
    fn file_blocks(&mut self, inode: &Inode) -> Vec<u64> {
        let mut out = Vec::new();
        let nblocks = inode.size.div_ceil(BLOCK_SIZE as u64);
        for lbn in 0..nblocks.min(NDIRECT as u64) {
            out.push(inode.direct[lbn as usize] as u64);
        }
        if nblocks > NDIRECT as u64 && inode.indirect != NO_BLOCK {
            let data = read_block(self.disk, inode.indirect as u64);
            let upto = (nblocks - NDIRECT as u64).min(PTRS_PER_BLOCK as u64);
            for j in 0..upto as usize {
                out.push(cffs_fslib::codec::get_u32(&data, j * 4) as u64);
            }
        }
        // Directories never use double-indirect blocks in practice; the
        // namespace walk only needs directory contents.
        out
    }

    fn phase2_namespace(&mut self) -> FsResult<()> {
        if !self.inodes.contains_key(&INO_ROOT) {
            self.report.errors.push("root inode missing".to_string());
            if self.repair {
                let mut root = Inode::new(FileKind::Dir);
                root.nlink = 2;
                let (blk, off) = self.sb.inode_location(INO_ROOT)?;
                let mut img = read_block(self.disk, blk);
                root.write_to(&mut img, off);
                write_block(self.disk, blk, &img);
                self.inodes.insert(INO_ROOT, (root, 0));
                self.report.repairs.push("recreated empty root inode".to_string());
            } else {
                return Ok(());
            }
        }
        let mut queue = vec![INO_ROOT];
        let mut seen = std::collections::HashSet::new();
        seen.insert(INO_ROOT);
        // Root gets one free reference (it has no parent entry).
        if let Some(e) = self.inodes.get_mut(&INO_ROOT) {
            e.1 += 1;
        }
        while let Some(dirino) = queue.pop() {
            let dinode = self.inodes[&dirino].0.clone();
            if dinode.kind != FileKind::Dir {
                self.report.errors.push(format!("non-directory {dirino} on directory walk"));
                continue;
            }
            for blk in self.file_blocks(&dinode) {
                if blk == 0 || blk >= self.sb.total_blocks {
                    self.report
                        .errors
                        .push(format!("directory {dirino} has invalid block {blk}"));
                    continue;
                }
                let mut data = read_block(self.disk, blk);
                let entries = match crate::dir::list(&data) {
                    Ok(es) => es,
                    Err(_) => {
                        self.report
                            .errors
                            .push(format!("directory {dirino} block {blk} is corrupt"));
                        if self.repair {
                            crate::dir::init_block(&mut data);
                            write_block(self.disk, blk, &data);
                            self.report
                                .repairs
                                .push(format!("reinitialized corrupt directory block {blk}"));
                        }
                        continue;
                    }
                };
                let mut dirty = false;
                for e in entries {
                    let child = e.ino as u64;
                    let valid = match self.inodes.get(&child) {
                        Some((ci, _)) => ci.kind == e.kind,
                        None => false,
                    };
                    if !valid {
                        self.report.errors.push(format!(
                            "entry '{}' in directory {dirino} points at bad inode {child}",
                            e.name
                        ));
                        if self.repair {
                            crate::dir::remove(&mut data, &e.name)?;
                            dirty = true;
                            self.report.repairs.push(format!(
                                "removed dangling entry '{}' from directory {dirino}",
                                e.name
                            ));
                        }
                        continue;
                    }
                    if let Some(entry) = self.inodes.get_mut(&child) {
                        entry.1 += 1;
                    }
                    if e.kind == FileKind::Dir {
                        if !seen.insert(child) {
                            self.report
                                .errors
                                .push(format!("directory {child} reachable twice"));
                        } else {
                            queue.push(child);
                        }
                    }
                }
                if dirty {
                    write_block(self.disk, blk, &data);
                }
            }
        }
        Ok(())
    }

    fn phase3_link_counts(&mut self) -> FsResult<()> {
        let mut fixes = Vec::new();
        for (&ino, (inode, refs)) in &self.inodes {
            if *refs == 0 {
                continue; // phase 4 handles orphans
            }
            let expect = match inode.kind {
                // Implicit "." and "..": a directory's nlink is 2 + child dirs.
                FileKind::Dir => {
                    1 + *refs
                        + self
                            .count_child_dirs(inode)
                }
                FileKind::File => *refs,
            };
            if inode.nlink as u32 != expect {
                self.report.errors.push(format!(
                    "inode {ino} has nlink {} but {expect} references",
                    inode.nlink
                ));
                if self.repair {
                    fixes.push((ino, expect));
                }
            }
        }
        for (ino, expect) in fixes {
            let (blk, off) = self.sb.inode_location(ino)?;
            let mut img = read_block(self.disk, blk);
            if let Some(mut inode) = Inode::read_from(&img, off) {
                inode.nlink = expect as u16;
                inode.write_to(&mut img, off);
                write_block(self.disk, blk, &img);
                self.inodes.get_mut(&ino).expect("known inode").0.nlink = expect as u16;
                self.report.repairs.push(format!("fixed nlink of inode {ino} to {expect}"));
            }
        }
        Ok(())
    }

    fn count_child_dirs(&self, dinode: &Inode) -> u32 {
        // Count subdirectory entries (each contributes an implicit "..").
        let mut n = 0;
        let nblocks = dinode.size.div_ceil(BLOCK_SIZE as u64);
        for lbn in 0..nblocks.min(NDIRECT as u64) {
            let blk = dinode.direct[lbn as usize] as u64;
            if blk == 0 || blk >= self.sb.total_blocks {
                continue;
            }
            if let Ok(entries) = crate::dir::list(&read_block(self.disk, blk)) {
                n += entries.iter().filter(|e| e.kind == FileKind::Dir).count() as u32;
            }
        }
        n
    }

    fn phase4_orphans(&mut self) -> FsResult<()> {
        let orphans: Vec<u64> = self
            .inodes
            .iter()
            .filter(|(_, (_, refs))| *refs == 0)
            .map(|(&ino, _)| ino)
            .collect();
        for ino in orphans {
            self.report.errors.push(format!("inode {ino} allocated but unreferenced"));
            if self.repair {
                let (blk, off) = self.sb.inode_location(ino)?;
                let mut img = read_block(self.disk, blk);
                Inode::clear_slot(&mut img, off);
                write_block(self.disk, blk, &img);
                self.inodes.remove(&ino);
                self.report.repairs.push(format!("cleared orphan inode {ino}"));
            }
        }
        Ok(())
    }

    fn phase5_bitmaps(&mut self) -> FsResult<()> {
        // Recompute expected bitmaps from the (possibly repaired) state.
        let live: std::collections::HashSet<u64> = if self.repair {
            // After orphan clearing, only reachable inodes own blocks.
            let mut owned = std::collections::HashSet::new();
            for (&blk, &ino) in &self.block_owner {
                if self.inodes.contains_key(&ino) {
                    owned.insert(blk);
                }
            }
            owned
        } else {
            self.block_owner.keys().copied().collect()
        };
        for cg in 0..self.sb.cg_count {
            let hdr_blk = self.sb.cg_header_block(cg);
            let img = read_block(self.disk, hdr_blk);
            let Ok(mut hdr) = CgHeader::read_from(&img, cg) else {
                self.report.errors.push(format!("cylinder group {cg} header corrupt"));
                continue;
            };
            let data_start = self.sb.cg_data_start(cg);
            let mut bad = false;
            for i in 0..hdr.block_bitmap.len() {
                let blk = data_start + i as u64;
                let should = live.contains(&blk);
                if hdr.block_bitmap.get(i) != should {
                    bad = true;
                    self.report.errors.push(format!(
                        "block {blk} bitmap says {} but is {}",
                        hdr.block_bitmap.get(i),
                        should
                    ));
                    if self.repair {
                        if should {
                            hdr.block_bitmap.set(i);
                        } else {
                            hdr.block_bitmap.clear(i);
                        }
                    }
                }
            }
            for i in 0..hdr.inode_bitmap.len() {
                let ino = cg as u64 * self.sb.inodes_per_cg as u64 + i as u64;
                let should = (cg == 0 && (ino == INO_NIL || ino == INO_BAD))
                    || self.inodes.contains_key(&ino);
                if hdr.inode_bitmap.get(i) != should {
                    bad = true;
                    self.report.errors.push(format!(
                        "inode {ino} bitmap says {} but is {}",
                        hdr.inode_bitmap.get(i),
                        should
                    ));
                    if self.repair {
                        if should {
                            hdr.inode_bitmap.set(i);
                        } else {
                            hdr.inode_bitmap.clear(i);
                        }
                    }
                }
            }
            if bad && self.repair {
                let mut out = vec![0u8; BLOCK_SIZE];
                hdr.write_to(&mut out);
                write_block(self.disk, hdr_blk, &out);
                self.report.repairs.push(format!("rewrote bitmaps of cylinder group {cg}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FfsOptions;
    use crate::mkfs::{mkfs, MkfsParams};
    use cffs_disksim::models;
    use cffs_fslib::{path, FileSystem};

    fn populated_disk() -> Disk {
        let disk = Disk::new(models::tiny_test_disk());
        let mut fs = mkfs(disk, MkfsParams::tiny(), FfsOptions::default()).unwrap();
        path::mkdir_p(&mut fs, "/a/b").unwrap();
        path::write_file(&mut fs, "/a/x.txt", b"hello").unwrap();
        path::write_file(&mut fs, "/a/b/y.txt", &vec![7u8; 100_000]).unwrap();
        let f = path::resolve(&mut fs, "/a/x.txt").unwrap();
        fs.link(f, fs.root(), "hard").unwrap();
        fs.unmount().unwrap()
    }

    #[test]
    fn clean_fs_passes() {
        let mut disk = populated_disk();
        let report = fsck(&mut disk, false).unwrap();
        assert!(report.clean(), "unexpected errors: {:?}", report.errors);
    }

    #[test]
    fn detects_and_repairs_orphan_inode() {
        let mut disk = populated_disk();
        // Forge an orphan: allocate a slot in the bitmap + inode table with
        // no directory entry.
        let sb = Superblock::read_from(&read_block(&disk, SB_BLOCK)).unwrap();
        let ino = 200u64;
        let (blk, off) = sb.inode_location(ino).unwrap();
        let mut img = read_block(&disk, blk);
        Inode::new(FileKind::File).write_to(&mut img, off);
        write_block(&mut disk, blk, &img);
        let hdr_blk = sb.cg_header_block(0);
        let mut hdr = CgHeader::read_from(&read_block(&disk, hdr_blk), 0).unwrap();
        hdr.inode_bitmap.set(ino as usize);
        let mut out = vec![0u8; BLOCK_SIZE];
        hdr.write_to(&mut out);
        write_block(&mut disk, hdr_blk, &out);

        let report = fsck(&mut disk, false).unwrap();
        assert!(!report.clean());
        let report = fsck(&mut disk, true).unwrap();
        assert!(!report.repairs.is_empty());
        assert!(fsck(&mut disk, false).unwrap().clean());
    }

    #[test]
    fn detects_dangling_dirent() {
        let mut disk = populated_disk();
        let sb = Superblock::read_from(&read_block(&disk, SB_BLOCK)).unwrap();
        // Clear the inode that "/a/x.txt" points to without touching the
        // directory — simulating a crash with the wrong write order.
        let mut fs = crate::fs::Ffs::mount(disk, FfsOptions::default()).unwrap();
        let ino = path::resolve(&mut fs, "/a/x.txt").unwrap();
        disk = fs.unmount().unwrap();
        let (blk, off) = sb.inode_location(ino).unwrap();
        let mut img = read_block(&disk, blk);
        Inode::clear_slot(&mut img, off);
        write_block(&mut disk, blk, &img);

        let report = fsck(&mut disk, false).unwrap();
        assert!(report.errors.iter().any(|e| e.contains("bad inode")), "{:?}", report.errors);
        fsck(&mut disk, true).unwrap();
        assert!(fsck(&mut disk, false).unwrap().clean());
        // The name is gone after repair.
        let mut fs = crate::fs::Ffs::mount(disk, FfsOptions::default()).unwrap();
        assert!(path::resolve(&mut fs, "/a/x.txt").is_err());
        assert!(path::resolve(&mut fs, "/a/b/y.txt").is_ok());
    }

    #[test]
    fn detects_bitmap_drift() {
        let mut disk = populated_disk();
        let sb = Superblock::read_from(&read_block(&disk, SB_BLOCK)).unwrap();
        let hdr_blk = sb.cg_header_block(0);
        let mut hdr = CgHeader::read_from(&read_block(&disk, hdr_blk), 0).unwrap();
        // Mark a random free block as allocated.
        let idx = hdr.block_bitmap.find_free(100).unwrap();
        hdr.block_bitmap.set(idx);
        let mut out = vec![0u8; BLOCK_SIZE];
        hdr.write_to(&mut out);
        write_block(&mut disk, hdr_blk, &out);

        let report = fsck(&mut disk, false).unwrap();
        assert!(!report.clean());
        fsck(&mut disk, true).unwrap();
        assert!(fsck(&mut disk, false).unwrap().clean());
    }

    #[test]
    fn detects_wrong_nlink() {
        let mut disk = populated_disk();
        let sb = Superblock::read_from(&read_block(&disk, SB_BLOCK)).unwrap();
        let mut fs = crate::fs::Ffs::mount(disk, FfsOptions::default()).unwrap();
        let ino = path::resolve(&mut fs, "/a/b/y.txt").unwrap();
        disk = fs.unmount().unwrap();
        let (blk, off) = sb.inode_location(ino).unwrap();
        let mut img = read_block(&disk, blk);
        let mut inode = Inode::read_from(&img, off).unwrap();
        inode.nlink = 7;
        inode.write_to(&mut img, off);
        write_block(&mut disk, blk, &img);

        let report = fsck(&mut disk, false).unwrap();
        assert!(report.errors.iter().any(|e| e.contains("nlink")));
        fsck(&mut disk, true).unwrap();
        assert!(fsck(&mut disk, false).unwrap().clean());
    }
}

//! Classic FFS directory blocks.
//!
//! A directory's data blocks hold variable-length entries:
//!
//! ```text
//! +--------+--------+---------+------+----------------+
//! | ino u32| reclen | namelen | kind | name (pad to 4)|
//! +--------+--------+---------+------+----------------+
//! ```
//!
//! Entries never cross a 512-byte *chunk* boundary (`DIRBLKSIZ` in BSD):
//! each chunk is an independent record heap fully covered by `reclen`
//! chains, so a single sector write always leaves a chunk self-consistent.
//! `ino == 0` marks reclaimable space. `.` and `..` are kept implicit, as
//! in the rest of the simulation.

use cffs_fslib::codec::{get_u16, get_u32, put_u16, put_u32};
use cffs_fslib::{FileKind, FsError, FsResult, BLOCK_SIZE};

/// The chunk size within which an entry must fit (sector size).
pub const DIRBLKSIZ: usize = 512;

/// Fixed part of an entry before the name.
pub const ENTRY_HEADER: usize = 8;

const KIND_FILE: u8 = 1;
const KIND_DIR: u8 = 2;

/// Space an entry for `namelen` bytes of name requires.
pub fn entry_len(namelen: usize) -> usize {
    ENTRY_HEADER + namelen.div_ceil(4) * 4
}

fn kind_to_byte(kind: FileKind) -> u8 {
    match kind {
        FileKind::File => KIND_FILE,
        FileKind::Dir => KIND_DIR,
    }
}

fn byte_to_kind(b: u8) -> FsResult<FileKind> {
    match b {
        KIND_FILE => Ok(FileKind::File),
        KIND_DIR => Ok(FileKind::Dir),
        _ => Err(FsError::Corrupt(format!("bad dirent kind {b}"))),
    }
}

/// A decoded directory entry plus its location in the block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEntry {
    /// Byte offset of the entry within the block.
    pub offset: usize,
    /// Referenced inode number (local 32-bit on-disk form).
    pub ino: u32,
    /// Entry kind.
    pub kind: FileKind,
    /// The name.
    pub name: String,
}

/// Initialize an empty directory block: one free entry per chunk.
pub fn init_block(buf: &mut [u8]) {
    buf[..BLOCK_SIZE].fill(0);
    for chunk in 0..BLOCK_SIZE / DIRBLKSIZ {
        put_u16(buf, chunk * DIRBLKSIZ + 4, DIRBLKSIZ as u16);
    }
}

/// Walk every entry (used and free) in a block, calling
/// `f(offset, ino, kind_byte, namelen, reclen)`. Returns an error if the
/// reclen chains are malformed.
fn walk(buf: &[u8], mut f: impl FnMut(usize, u32, u8, usize, usize) -> bool) -> FsResult<()> {
    for chunk in 0..BLOCK_SIZE / DIRBLKSIZ {
        let base = chunk * DIRBLKSIZ;
        let mut off = base;
        while off < base + DIRBLKSIZ {
            let reclen = get_u16(buf, off + 4) as usize;
            if reclen < ENTRY_HEADER || off + reclen > base + DIRBLKSIZ || !reclen.is_multiple_of(4) {
                return Err(FsError::Corrupt(format!("bad reclen {reclen} at offset {off}")));
            }
            let ino = get_u32(buf, off);
            let namelen = buf[off + 6] as usize;
            if ino != 0 && entry_len(namelen) > reclen {
                return Err(FsError::Corrupt(format!("name overflows entry at offset {off}")));
            }
            if !f(off, ino, buf[off + 7], namelen, reclen) {
                return Ok(());
            }
            off += reclen;
        }
    }
    Ok(())
}

/// List the used entries in a block.
pub fn list(buf: &[u8]) -> FsResult<Vec<RawEntry>> {
    let mut out = Vec::new();
    let mut bad: Option<FsError> = None;
    walk(buf, |off, ino, kindb, namelen, _| {
        if ino != 0 {
            match (
                byte_to_kind(kindb),
                std::str::from_utf8(&buf[off + ENTRY_HEADER..off + ENTRY_HEADER + namelen]),
            ) {
                (Ok(kind), Ok(name)) => {
                    out.push(RawEntry { offset: off, ino, kind, name: to_owned_name(name) })
                }
                _ => {
                    bad = Some(FsError::Corrupt(format!("undecodable entry at offset {off}")));
                    return false;
                }
            }
        }
        true
    })?;
    match bad {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

fn to_owned_name(s: &str) -> String {
    s.to_string()
}

/// Find a used entry by name.
pub fn find(buf: &[u8], name: &str) -> FsResult<Option<RawEntry>> {
    let mut found = None;
    walk(buf, |off, ino, kindb, namelen, _| {
        if ino != 0
            && namelen == name.len()
            && &buf[off + ENTRY_HEADER..off + ENTRY_HEADER + namelen] == name.as_bytes()
        {
            if let Ok(kind) = byte_to_kind(kindb) {
                found = Some(RawEntry { offset: off, ino, kind, name: name.to_string() });
            }
            return false;
        }
        true
    })?;
    Ok(found)
}

/// Would an entry for `name` fit somewhere in this block? (A dry run of
/// [`insert`]'s slot search, so callers can avoid dirtying a full block.)
pub fn has_space(buf: &[u8], name: &str) -> FsResult<bool> {
    let need = entry_len(name.len());
    let mut found = false;
    walk(buf, |_, e_ino, _, namelen, reclen| {
        let used = if e_ino == 0 { 0 } else { entry_len(namelen) };
        if reclen - used >= need {
            found = true;
            return false;
        }
        true
    })?;
    Ok(found)
}

/// Insert an entry. Returns the byte offset on success, or `None` if no
/// chunk has room (the caller grows the directory by a block).
pub fn insert(buf: &mut [u8], name: &str, ino: u32, kind: FileKind) -> FsResult<Option<usize>> {
    debug_assert!(ino != 0, "inode 0 is the free marker");
    let need = entry_len(name.len());
    // Pass 1: find a slot (free entry or slack behind a used one).
    let mut slot: Option<(usize, u32, usize, usize)> = None; // (off, ino, used_len, reclen)
    walk(buf, |off, e_ino, _, namelen, reclen| {
        let used = if e_ino == 0 { 0 } else { entry_len(namelen) };
        if reclen - used >= need {
            slot = Some((off, e_ino, used, reclen));
            return false;
        }
        true
    })?;
    let Some((off, e_ino, used, reclen)) = slot else {
        return Ok(None);
    };
    let new_off = if e_ino == 0 {
        // Claim the free entry in place, keeping its full reclen.
        off
    } else {
        // Split the slack off the used entry.
        put_u16(buf, off + 4, used as u16);
        off + used
    };
    let new_reclen = if e_ino == 0 { reclen } else { reclen - used };
    put_u32(buf, new_off, ino);
    put_u16(buf, new_off + 4, new_reclen as u16);
    buf[new_off + 6] = name.len() as u8;
    buf[new_off + 7] = kind_to_byte(kind);
    buf[new_off + ENTRY_HEADER..new_off + ENTRY_HEADER + name.len()]
        .copy_from_slice(name.as_bytes());
    Ok(Some(new_off))
}

/// Remove the entry named `name`. Returns its inode number, or `None` if
/// not present in this block.
pub fn remove(buf: &mut [u8], name: &str) -> FsResult<Option<u32>> {
    // Locate the entry and its predecessor within the same chunk.
    let mut target: Option<(usize, Option<usize>, u32, usize)> = None; // (off, prev_off, ino, reclen)
    let mut prev_in_chunk: Option<usize> = None;
    walk(buf, |off, e_ino, _, namelen, reclen| {
        if off % DIRBLKSIZ == 0 {
            prev_in_chunk = None;
        }
        if e_ino != 0
            && namelen == name.len()
            && &buf[off + ENTRY_HEADER..off + ENTRY_HEADER + namelen] == name.as_bytes()
        {
            target = Some((off, prev_in_chunk, e_ino, reclen));
            return false;
        }
        prev_in_chunk = Some(off);
        true
    })?;
    let Some((off, prev, ino, reclen)) = target else {
        return Ok(None);
    };
    match prev {
        Some(p) => {
            // Merge into the predecessor's reclen.
            let p_reclen = get_u16(buf, p + 4) as usize;
            put_u16(buf, p + 4, (p_reclen + reclen) as u16);
        }
        None => {
            // First entry of the chunk: mark free, keep reclen.
            put_u32(buf, off, 0);
        }
    }
    Ok(Some(ino))
}

/// True if the block holds no used entries.
pub fn is_empty(buf: &[u8]) -> FsResult<bool> {
    let mut any = false;
    walk(buf, |_, ino, _, _, _| {
        if ino != 0 {
            any = true;
            return false;
        }
        true
    })?;
    Ok(!any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn block() -> Vec<u8> {
        let mut b = vec![0u8; BLOCK_SIZE];
        init_block(&mut b);
        b
    }

    #[test]
    fn fresh_block_is_empty() {
        let b = block();
        assert!(is_empty(&b).unwrap());
        assert!(list(&b).unwrap().is_empty());
        assert_eq!(find(&b, "nope").unwrap(), None);
    }

    #[test]
    fn insert_find_remove() {
        let mut b = block();
        insert(&mut b, "hello.c", 42, FileKind::File).unwrap().unwrap();
        let e = find(&b, "hello.c").unwrap().unwrap();
        assert_eq!((e.ino, e.kind), (42, FileKind::File));
        assert_eq!(remove(&mut b, "hello.c").unwrap(), Some(42));
        assert_eq!(find(&b, "hello.c").unwrap(), None);
        assert!(is_empty(&b).unwrap());
    }

    #[test]
    fn many_entries_per_chunk() {
        let mut b = block();
        let mut names = Vec::new();
        let mut n = 0u32;
        loop {
            let name = format!("file{n:04}");
            match insert(&mut b, &name, n + 1, FileKind::File).unwrap() {
                Some(_) => names.push(name),
                None => break,
            }
            n += 1;
        }
        // 16-byte entries, 512-byte chunks, 8 chunks: 256 entries.
        assert_eq!(names.len(), 256);
        let listed = list(&b).unwrap();
        assert_eq!(listed.len(), 256);
        for name in &names {
            assert!(find(&b, name).unwrap().is_some(), "{name} lost");
        }
    }

    #[test]
    fn remove_merges_space_for_reuse() {
        let mut b = block();
        for i in 0..20u32 {
            insert(&mut b, &format!("f{i:02}"), i + 1, FileKind::File).unwrap().unwrap();
        }
        for i in 0..20u32 {
            remove(&mut b, &format!("f{i:02}")).unwrap().unwrap();
        }
        assert!(is_empty(&b).unwrap());
        // A long name needs merged space.
        let long = "a".repeat(200);
        assert!(insert(&mut b, &long, 7, FileKind::File).unwrap().is_some());
        assert_eq!(find(&b, &long).unwrap().unwrap().ino, 7);
    }

    #[test]
    fn entries_never_cross_chunk_boundaries() {
        let mut b = block();
        let mut offs = Vec::new();
        for i in 0..60u32 {
            let name = format!("some-longer-name-{i:03}");
            if let Some(off) = insert(&mut b, &name, i + 1, FileKind::File).unwrap() {
                offs.push((off, entry_len(name.len())));
            }
        }
        for (off, len) in offs {
            assert_eq!(off / DIRBLKSIZ, (off + len - 1) / DIRBLKSIZ, "entry crosses chunk");
        }
    }

    #[test]
    fn full_block_rejects_insert() {
        let mut b = block();
        let mut n = 0u32;
        while insert(&mut b, &format!("file{n:04}"), n + 1, FileKind::File).unwrap().is_some() {
            n += 1;
        }
        assert!(insert(&mut b, "onemore", 9999, FileKind::File).unwrap().is_none());
        // But removing one lets a similarly sized name in.
        remove(&mut b, "file0100").unwrap().unwrap();
        assert!(insert(&mut b, "newfile1", 9999, FileKind::File).unwrap().is_some());
    }

    #[test]
    fn kinds_round_trip() {
        let mut b = block();
        insert(&mut b, "d", 5, FileKind::Dir).unwrap().unwrap();
        insert(&mut b, "f", 6, FileKind::File).unwrap().unwrap();
        assert_eq!(find(&b, "d").unwrap().unwrap().kind, FileKind::Dir);
        assert_eq!(find(&b, "f").unwrap().unwrap().kind, FileKind::File);
    }

    #[test]
    fn corrupt_reclen_detected() {
        let mut b = block();
        insert(&mut b, "x", 1, FileKind::File).unwrap().unwrap();
        put_u16(&mut b, 4, 3); // bogus reclen
        assert!(matches!(list(&b), Err(FsError::Corrupt(_))));
    }

    proptest! {
        #[test]
        fn random_ops_match_btreemap(
            ops in proptest::collection::vec(
                (0u8..3, 0usize..40, 1u32..10_000), 0..200)
        ) {
            use std::collections::BTreeMap;
            let mut b = block();
            let mut model: BTreeMap<String, u32> = BTreeMap::new();
            for (op, name_i, ino) in ops {
                let name = format!("name-{name_i}");
                match op {
                    0 => {
                        if !model.contains_key(&name)
                            && insert(&mut b, &name, ino, FileKind::File).unwrap().is_some() {
                                model.insert(name, ino);
                            }
                    }
                    1 => {
                        let got = remove(&mut b, &name).unwrap();
                        prop_assert_eq!(got, model.remove(&name));
                    }
                    _ => {
                        let got = find(&b, &name).unwrap().map(|e| e.ino);
                        prop_assert_eq!(got, model.get(&name).copied());
                    }
                }
            }
            let mut listed: Vec<(String, u32)> =
                list(&b).unwrap().into_iter().map(|e| (e.name, e.ino)).collect();
            listed.sort();
            let expect: Vec<(String, u32)> = model.into_iter().collect();
            prop_assert_eq!(listed, expect);
        }
    }
}

//! The mounted file system: `Ffs` and its [`FileSystem`] implementation.
//!
//! ## Metadata update ordering
//!
//! In [`MetadataMode::Synchronous`] the classic FFS discipline [Ganger94]
//! applies:
//!
//! * **create/mkdir/link**: the initialized (or re-counted) inode block is
//!   written synchronously *before* the directory block naming it — a
//!   crash may leak an inode but can never produce a name that points at
//!   an uninitialized inode.
//! * **unlink/rmdir**: the directory block is written synchronously
//!   *before* the inode is cleared and freed — a crash may leak the inode
//!   again, but a name never points at freed storage.
//!
//! That is two synchronous disk writes per create and per delete: the cost
//! C-FFS's embedded inodes halve (name and inode share a sector) and soft
//! updates eliminate. In [`MetadataMode::Delayed`] every metadata write is
//! simply left dirty in the cache until [`Ffs::sync`] — the paper's
//! soft-updates emulation.
//!
//! File *data* writes are always delayed; bitmaps and the superblock are
//! flushed at sync, as in the real FFS.

use crate::alloc::Allocator;
use crate::dir;
use crate::layout::{CgHeader, Superblock, INO_ROOT, SB_BLOCK};
use cffs_cache::{BufferCache, CacheConfig};
use cffs_disksim::driver::{Driver, DriverConfig, Scheduler};
use cffs_disksim::{Disk, SimDuration, SimTime};
use cffs_fslib::error::check_name;
use cffs_fslib::inode::{Inode, MAX_FILE_SIZE, NDIRECT, NO_BLOCK, PTRS_PER_BLOCK};
use cffs_fslib::vfs::MetadataMode;
use cffs_fslib::{
    Attr, CpuModel, DirEntry, FileKind, FsError, FsResult, FileSystem, Ino, IoStats, StatFs,
    BLOCK_SIZE,
};
use cffs_obs::{Ctr, Obs, OpKind, SpanGuard};
use std::sync::Arc;

/// Mount-time options.
#[derive(Debug, Clone)]
pub struct FfsOptions {
    /// Metadata durability policy.
    pub metadata_mode: MetadataMode,
    /// Buffer-cache sizing.
    pub cache: CacheConfig,
    /// CPU cost model.
    pub cpu: CpuModel,
    /// Disk-driver scheduler.
    pub scheduler: Scheduler,
    /// Label for reports.
    pub label: String,
}

impl Default for FfsOptions {
    fn default() -> Self {
        FfsOptions {
            metadata_mode: MetadataMode::Synchronous,
            cache: CacheConfig::default(),
            cpu: CpuModel::default(),
            scheduler: Scheduler::CLook,
            label: "FFS".to_string(),
        }
    }
}

/// A mounted classic Fast File System.
#[derive(Debug)]
pub struct Ffs {
    drv: Driver,
    cache: BufferCache,
    sb: Superblock,
    alloc: Allocator,
    cpu: CpuModel,
    mode: MetadataMode,
    label: String,
}

impl Ffs {
    /// Mount an existing file system from `disk`.
    pub fn mount(disk: Disk, opts: FfsOptions) -> FsResult<Ffs> {
        let drv = Driver::new(disk, DriverConfig { scheduler: opts.scheduler });
        let mut buf = vec![0u8; BLOCK_SIZE];
        drv.read(SB_BLOCK * cffs_fslib::SECTORS_PER_BLOCK, &mut buf);
        let sb = Superblock::read_from(&buf)?;
        let mut cgs = Vec::with_capacity(sb.cg_count as usize);
        for cg in 0..sb.cg_count {
            drv.read(sb.cg_header_block(cg) * cffs_fslib::SECTORS_PER_BLOCK, &mut buf);
            cgs.push(CgHeader::read_from(&buf, cg)?);
        }
        // Share one Obs handle across disk, driver, and cache.
        let mut cache = BufferCache::new(opts.cache);
        cache.set_obs(drv.obs());
        Ok(Ffs {
            drv,
            cache,
            sb,
            alloc: Allocator::new(cgs),
            cpu: opts.cpu,
            mode: opts.metadata_mode,
            label: opts.label,
        })
    }

    /// Sync everything and hand the disk back (for remount or inspection).
    pub fn unmount(mut self) -> FsResult<Disk> {
        self.sync()?;
        Ok(self.drv.into_disk())
    }

    /// Snapshot the disk as a crash at this instant would leave it: dirty
    /// cache contents are *not* included.
    pub fn crash_image(&self) -> Disk {
        self.drv.with_disk(|d| d.clone_image())
    }

    /// Snapshot the disk as a crash *during its most recent write* would
    /// leave it (only `keep_sectors` sectors landed); `None` before any
    /// write. See [`Disk::clone_image_torn`].
    pub fn crash_image_torn(&self, keep_sectors: usize) -> Option<Disk> {
        self.drv.with_disk(|d| d.clone_image_torn(keep_sectors))
    }

    /// The mounted superblock (tests, fsck, benchmarks).
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// The stack-wide observability handle (counters + event trace) shared
    /// by the disk, driver, cache, and this file-system layer.
    pub fn obs(&self) -> Arc<Obs> {
        self.drv.obs()
    }

    /// Enable/disable per-request disk trace recording (access-pattern
    /// analysis; off by default).
    pub fn set_disk_trace(&mut self, on: bool) {
        self.drv.with_disk_mut(|d| d.set_trace(on));
    }

    /// The recorded disk trace (empty when recording is off).
    pub fn disk_trace(&self) -> Vec<cffs_disksim::TraceEntry> {
        self.drv.with_disk(|d| d.trace().to_vec())
    }

    fn charge(&mut self, d: SimDuration) {
        self.drv.advance(d);
    }

    /// Open a causal attribution span for one public entry point: every
    /// disk request issued while it is open is stamped with this op (see
    /// [`Obs::span`]; nested entry-point calls stay attributed to the
    /// outermost op).
    fn op_span(&self, op: OpKind) -> SpanGuard {
        self.drv.obs().span(op)
    }

    fn ino_cg(&self, ino: Ino) -> u32 {
        (ino / self.sb.inodes_per_cg as u64) as u32
    }

    // ----- inode access -------------------------------------------------

    fn read_inode(&mut self, ino: Ino) -> FsResult<Inode> {
        self.charge(self.cpu.block_op);
        self.obs().bump(Ctr::FsExternalInodeOps);
        let (blk, off) = self.sb.inode_location(ino)?;
        let data = self.cache.read_block(&self.drv, blk)?;
        Inode::read_from(&data, off).ok_or(FsError::StaleHandle)
    }

    /// Write an inode image. `durable` requests a synchronous flush when
    /// the mount is in synchronous-metadata mode.
    fn write_inode(&mut self, ino: Ino, inode: &Inode, durable: bool) -> FsResult<()> {
        self.charge(self.cpu.block_op);
        self.obs().bump(Ctr::FsExternalInodeOps);
        let (blk, off) = self.sb.inode_location(ino)?;
        self.cache
            .modify_block(&self.drv, blk, true, true, |d| inode.write_to(d, off))?;
        if durable {
            if self.mode == MetadataMode::Synchronous {
                self.obs().bump(Ctr::FsSyncMetaWrites);
                self.cache.flush_block_sync(&self.drv, blk)?;
            } else {
                self.obs().bump(Ctr::FsDelayedMetaWrites);
            }
        }
        Ok(())
    }

    fn clear_inode(&mut self, ino: Ino, durable: bool) -> FsResult<()> {
        self.charge(self.cpu.block_op);
        let (blk, off) = self.sb.inode_location(ino)?;
        self.cache
            .modify_block(&self.drv, blk, true, true, |d| Inode::clear_slot(d, off))?;
        if durable && self.mode == MetadataMode::Synchronous {
            self.cache.flush_block_sync(&self.drv, blk)?;
        }
        Ok(())
    }

    // ----- block mapping --------------------------------------------------

    /// Map logical block `lbn` of an inode to a physical block. With
    /// `alloc`, missing blocks (and indirect blocks) are allocated; the
    /// caller must persist the updated inode.
    fn bmap(&mut self, ino: Ino, inode: &mut Inode, lbn: u64, alloc: bool) -> FsResult<Option<u64>> {
        self.charge(self.cpu.block_op);
        if lbn >= cffs_fslib::inode::MAX_FILE_BLOCKS {
            return Err(FsError::FileTooBig);
        }
        let cg = self.ino_cg(ino);
        if (lbn as usize) < NDIRECT {
            let cur = inode.direct[lbn as usize];
            if cur != NO_BLOCK {
                return Ok(Some(cur as u64));
            }
            if !alloc {
                return Ok(None);
            }
            let hint = if lbn > 0 { inode.direct[lbn as usize - 1] } else { NO_BLOCK };
            self.charge(self.cpu.alloc_op);
            let blk = self.alloc.alloc_block(
                &self.sb,
                cg,
                (hint != NO_BLOCK).then_some(hint as u64),
            )?;
            inode.direct[lbn as usize] = blk as u32;
            inode.blocks += 1;
            return Ok(Some(blk));
        }
        let l1 = lbn as usize - NDIRECT;
        if l1 < PTRS_PER_BLOCK {
            let Some((ind, fresh)) = self.get_or_alloc_indirect(inode.indirect, cg, alloc)? else {
                return Ok(None);
            };
            if fresh {
                inode.indirect = ind as u32;
                inode.blocks += 1;
            }
            return self.indirect_slot(ind, l1, cg, alloc, inode);
        }
        let l2 = l1 - PTRS_PER_BLOCK;
        let outer = l2 / PTRS_PER_BLOCK;
        let inner = l2 % PTRS_PER_BLOCK;
        let Some((dind, fresh)) = self.get_or_alloc_indirect(inode.dindirect, cg, alloc)? else {
            return Ok(None);
        };
        if fresh {
            inode.dindirect = dind as u32;
            inode.blocks += 1;
        }
        // Fetch/allocate the second-level indirect block pointer.
        let data = self.cache.read_block(&self.drv, dind)?;
        let mut mid = cffs_fslib::codec::get_u32(&data, outer * 4);
        if mid == NO_BLOCK {
            if !alloc {
                return Ok(None);
            }
            self.charge(self.cpu.alloc_op);
            let nb = self.alloc.alloc_block(&self.sb, cg, Some(dind))?;
            self.cache
                .modify_block(&self.drv, nb, true, false, |d| d.fill(0))?;
            self.cache.modify_block(&self.drv, dind, true, true, |d| {
                cffs_fslib::codec::put_u32(d, outer * 4, nb as u32)
            })?;
            inode.blocks += 1;
            mid = nb as u32;
        }
        self.indirect_slot(mid as u64, inner, cg, alloc, inode)
    }

    /// Dereference (or allocate) a top-level indirect pointer. Returns the
    /// block and whether it was freshly allocated (the caller updates the
    /// inode's pointer and block count).
    fn get_or_alloc_indirect(
        &mut self,
        cur: u32,
        cg: u32,
        alloc: bool,
    ) -> FsResult<Option<(u64, bool)>> {
        if cur != NO_BLOCK {
            return Ok(Some((cur as u64, false)));
        }
        if !alloc {
            return Ok(None);
        }
        self.charge(self.cpu.alloc_op);
        let blk = self.alloc.alloc_block(&self.sb, cg, None)?;
        self.cache
            .modify_block(&self.drv, blk, true, false, |d| d.fill(0))?;
        Ok(Some((blk, true)))
    }

    /// Read/allocate slot `idx` of the indirect block `ind`.
    fn indirect_slot(
        &mut self,
        ind: u64,
        idx: usize,
        cg: u32,
        alloc: bool,
        inode: &mut Inode,
    ) -> FsResult<Option<u64>> {
        let data = self.cache.read_block(&self.drv, ind)?;
        let cur = cffs_fslib::codec::get_u32(&data, idx * 4);
        if cur != NO_BLOCK {
            return Ok(Some(cur as u64));
        }
        if !alloc {
            return Ok(None);
        }
        self.charge(self.cpu.alloc_op);
        let hint = if idx > 0 {
            let prev = cffs_fslib::codec::get_u32(&self.cache.read_block(&self.drv, ind)?, (idx - 1) * 4);
            (prev != NO_BLOCK).then_some(prev as u64)
        } else {
            Some(ind)
        };
        let blk = self.alloc.alloc_block(&self.sb, cg, hint)?;
        self.cache.modify_block(&self.drv, ind, true, true, |d| {
            cffs_fslib::codec::put_u32(d, idx * 4, blk as u32)
        })?;
        inode.blocks += 1;
        Ok(Some(blk))
    }

    /// Free every data and indirect block at or beyond logical block
    /// `from_lbn`, updating the inode in place.
    fn free_blocks_from(&mut self, ino: Ino, inode: &mut Inode, from_lbn: u64) -> FsResult<()> {
        // Direct pointers.
        for l in from_lbn..NDIRECT as u64 {
            let slot = inode.direct[l as usize];
            if slot != NO_BLOCK {
                self.release_data_block(ino, l, slot as u64);
                inode.direct[l as usize] = NO_BLOCK;
                inode.blocks = inode.blocks.saturating_sub(1);
            }
        }
        // Single indirect.
        if inode.indirect != NO_BLOCK {
            let base = NDIRECT as u64;
            let kept = self.free_indirect(ino, inode.indirect as u64, base, from_lbn, &mut inode.blocks)?;
            if !kept {
                self.release_meta_block(inode.indirect as u64);
                inode.indirect = NO_BLOCK;
                inode.blocks = inode.blocks.saturating_sub(1);
            }
        }
        // Double indirect.
        if inode.dindirect != NO_BLOCK {
            let dind = inode.dindirect as u64;
            let mut any_kept = false;
            let ptrs: Vec<u32> = {
                let data = self.cache.read_block(&self.drv, dind)?;
                (0..PTRS_PER_BLOCK).map(|i| cffs_fslib::codec::get_u32(&data, i * 4)).collect()
            };
            for (outer, &mid) in ptrs.iter().enumerate() {
                if mid == NO_BLOCK {
                    continue;
                }
                let base = NDIRECT as u64 + PTRS_PER_BLOCK as u64 + (outer * PTRS_PER_BLOCK) as u64;
                let kept = self.free_indirect(ino, mid as u64, base, from_lbn, &mut inode.blocks)?;
                if kept {
                    any_kept = true;
                } else {
                    self.release_meta_block(mid as u64);
                    inode.blocks = inode.blocks.saturating_sub(1);
                    self.cache.modify_block(&self.drv, dind, true, true, |d| {
                        cffs_fslib::codec::put_u32(d, outer * 4, NO_BLOCK)
                    })?;
                }
            }
            if !any_kept {
                self.release_meta_block(dind);
                inode.dindirect = NO_BLOCK;
                inode.blocks = inode.blocks.saturating_sub(1);
            }
        }
        Ok(())
    }

    /// Free the data blocks of one indirect block whose first mapped lbn is
    /// `base`. Returns true if any pointer below `from_lbn` survives.
    fn free_indirect(
        &mut self,
        ino: Ino,
        ind: u64,
        base: u64,
        from_lbn: u64,
        blocks: &mut u32,
    ) -> FsResult<bool> {
        let ptrs: Vec<u32> = {
            let data = self.cache.read_block(&self.drv, ind)?;
            (0..PTRS_PER_BLOCK).map(|i| cffs_fslib::codec::get_u32(&data, i * 4)).collect()
        };
        let mut kept = false;
        for (i, &p) in ptrs.iter().enumerate() {
            let lbn = base + i as u64;
            if p == NO_BLOCK {
                continue;
            }
            if lbn >= from_lbn {
                self.release_data_block(ino, lbn, p as u64);
                *blocks = blocks.saturating_sub(1);
                self.cache.modify_block(&self.drv, ind, true, true, |d| {
                    cffs_fslib::codec::put_u32(d, i * 4, NO_BLOCK)
                })?;
            } else {
                kept = true;
            }
        }
        Ok(kept)
    }

    fn release_data_block(&mut self, ino: Ino, lbn: u64, blk: u64) {
        self.cache.unbind_logical(ino, lbn);
        self.cache.invalidate_block(&self.drv, blk);
        self.alloc.free_block(&self.sb, blk);
    }

    fn release_meta_block(&mut self, blk: u64) {
        self.cache.invalidate_block(&self.drv, blk);
        self.alloc.free_block(&self.sb, blk);
    }

    // ----- directory helpers -------------------------------------------

    fn require_dir(&mut self, ino: Ino) -> FsResult<Inode> {
        let inode = self.read_inode(ino)?;
        if inode.kind != FileKind::Dir {
            return Err(FsError::NotDir);
        }
        Ok(inode)
    }

    /// Scan the directory for `name`; returns `(block, entry)`.
    fn dir_find(
        &mut self,
        dirino: Ino,
        inode: &mut Inode,
        name: &str,
    ) -> FsResult<Option<(u64, dir::RawEntry)>> {
        let nblocks = inode.size / BLOCK_SIZE as u64;
        for lbn in 0..nblocks {
            let blk = self
                .bmap(dirino, inode, lbn, false)?
                .ok_or_else(|| FsError::Corrupt(format!("hole in directory {dirino}")))?;
            self.charge(self.cpu.scan_cost(16));
            let data = self.cache.read_block_bound(&self.drv, blk, dirino, lbn)?;
            if let Some(e) = dir::find(&data, name)? {
                return Ok(Some((blk, e)));
            }
        }
        Ok(None)
    }

    /// Insert a name; grows the directory if needed. Returns the block
    /// that received the entry (already marked dirty) and whether the
    /// directory grew — growth makes the subsequent directory-inode write
    /// part of the ordered update (its new block pointer must reach the
    /// disk, or a crash orphans the entries in the new block).
    fn dir_insert(
        &mut self,
        dirino: Ino,
        inode: &mut Inode,
        name: &str,
        ino: Ino,
        kind: FileKind,
    ) -> FsResult<(u64, bool)> {
        let nblocks = inode.size / BLOCK_SIZE as u64;
        for lbn in 0..nblocks {
            let blk = self
                .bmap(dirino, inode, lbn, false)?
                .ok_or_else(|| FsError::Corrupt(format!("hole in directory {dirino}")))?;
            self.charge(self.cpu.scan_cost(16));
            let data = self.cache.read_block_bound(&self.drv, blk, dirino, lbn)?;
            if dir::has_space(&data, name)? {
                self.cache.modify_block_bound(&self.drv, blk, dirino, lbn, true, |d| {
                    dir::insert(d, name, ino as u32, kind)
                })??;
                return Ok((blk, false));
            }
        }
        // Grow by one block.
        let lbn = nblocks;
        let blk = self
            .bmap(dirino, inode, lbn, true)?
            .ok_or(FsError::NoSpace)?;
        inode.size += BLOCK_SIZE as u64;
        self.cache.modify_block_bound(&self.drv, blk, dirino, lbn, false, |d| {
            dir::init_block(d);
            dir::insert(d, name, ino as u32, kind)
        })??;
        Ok((blk, true))
    }

    /// Remove a name; returns `(block, removed inode number, kind)`.
    fn dir_remove(
        &mut self,
        dirino: Ino,
        inode: &mut Inode,
        name: &str,
    ) -> FsResult<(u64, Ino, FileKind)> {
        let Some((blk, entry)) = self.dir_find(dirino, inode, name)? else {
            return Err(FsError::NotFound);
        };
        // Re-derive the lbn for the logical binding.
        self.cache.modify_block(&self.drv, blk, true, true, |d| dir::remove(d, name))??;
        Ok((blk, entry.ino as Ino, entry.kind))
    }

    /// Apply the synchronous-metadata policy to a dirtied directory block.
    fn dir_durable(&mut self, blk: u64) -> FsResult<()> {
        if self.mode == MetadataMode::Synchronous {
            self.obs().bump(Ctr::FsSyncMetaWrites);
            self.cache.flush_block_sync(&self.drv, blk)?;
        } else {
            self.obs().bump(Ctr::FsDelayedMetaWrites);
        }
        Ok(())
    }

    fn dir_is_empty(&mut self, dirino: Ino, inode: &mut Inode) -> FsResult<bool> {
        let nblocks = inode.size / BLOCK_SIZE as u64;
        for lbn in 0..nblocks {
            let blk = self
                .bmap(dirino, inode, lbn, false)?
                .ok_or_else(|| FsError::Corrupt(format!("hole in directory {dirino}")))?;
            let data = self.cache.read_block_bound(&self.drv, blk, dirino, lbn)?;
            if !dir::is_empty(&data)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Shared tail of unlink/rename-replace: drop one link from `ino`,
    /// freeing it when the count hits zero. The name is already gone.
    fn drop_file_link(&mut self, ino: Ino) -> FsResult<()> {
        let mut inode = self.read_inode(ino)?;
        inode.nlink -= 1;
        if inode.nlink == 0 {
            self.free_blocks_from(ino, &mut inode, 0)?;
            self.clear_inode(ino, true)?;
            self.charge(self.cpu.alloc_op);
            self.alloc.free_inode(&self.sb, ino, false);
        } else {
            self.write_inode(ino, &inode, true)?;
        }
        Ok(())
    }
}

impl FileSystem for Ffs {
    fn label(&self) -> &str {
        &self.label
    }

    fn root(&self) -> Ino {
        INO_ROOT
    }

    fn lookup(&mut self, dirino: Ino, name: &str) -> FsResult<Ino> {
        let _span = self.op_span(OpKind::Lookup);
        self.charge(self.cpu.syscall);
        check_name(name)?;
        let mut inode = self.require_dir(dirino)?;
        match self.dir_find(dirino, &mut inode, name)? {
            Some((_, e)) => Ok(e.ino as Ino),
            None => Err(FsError::NotFound),
        }
    }

    fn getattr(&mut self, ino: Ino) -> FsResult<Attr> {
        let _span = self.op_span(OpKind::Getattr);
        self.charge(self.cpu.syscall);
        let inode = self.read_inode(ino)?;
        Ok(Attr {
            ino,
            kind: inode.kind,
            size: inode.size,
            nlink: inode.nlink as u32,
            blocks: inode.blocks as u64,
        })
    }

    fn create(&mut self, dirino: Ino, name: &str) -> FsResult<Ino> {
        let _span = self.op_span(OpKind::Create);
        self.charge(self.cpu.syscall);
        check_name(name)?;
        let mut dinode = self.require_dir(dirino)?;
        if self.dir_find(dirino, &mut dinode, name)?.is_some() {
            return Err(FsError::Exists);
        }
        self.charge(self.cpu.alloc_op);
        let ino = self.alloc.alloc_inode(&self.sb, FileKind::File, self.ino_cg(dirino))?;
        let inode = Inode::new(FileKind::File);
        // Ordering: inode first (synchronously), then the name.
        self.write_inode(ino, &inode, true)?;
        let (blk, grew) = self.dir_insert(dirino, &mut dinode, name, ino, FileKind::File)?;
        self.dir_durable(blk)?;
        self.write_inode(dirino, &dinode, grew)?;
        Ok(ino)
    }

    fn mkdir(&mut self, dirino: Ino, name: &str) -> FsResult<Ino> {
        let _span = self.op_span(OpKind::Mkdir);
        self.charge(self.cpu.syscall);
        check_name(name)?;
        let mut dinode = self.require_dir(dirino)?;
        if self.dir_find(dirino, &mut dinode, name)?.is_some() {
            return Err(FsError::Exists);
        }
        self.charge(self.cpu.alloc_op);
        let ino = self.alloc.alloc_inode(&self.sb, FileKind::Dir, self.ino_cg(dirino))?;
        let mut inode = Inode::new(FileKind::Dir);
        inode.nlink = 2;
        self.write_inode(ino, &inode, true)?;
        let (blk, grew) = self.dir_insert(dirino, &mut dinode, name, ino, FileKind::Dir)?;
        dinode.nlink += 1;
        self.dir_durable(blk)?;
        self.write_inode(dirino, &dinode, grew)?;
        Ok(ino)
    }

    fn unlink(&mut self, dirino: Ino, name: &str) -> FsResult<()> {
        let _span = self.op_span(OpKind::Unlink);
        self.charge(self.cpu.syscall);
        check_name(name)?;
        let mut dinode = self.require_dir(dirino)?;
        let Some((_, entry)) = self.dir_find(dirino, &mut dinode, name)? else {
            return Err(FsError::NotFound);
        };
        if entry.kind == FileKind::Dir {
            return Err(FsError::IsDir);
        }
        // Ordering: name removal hits the disk before the inode is freed.
        let (blk, ino, _) = self.dir_remove(dirino, &mut dinode, name)?;
        self.dir_durable(blk)?;
        self.drop_file_link(ino)
    }

    fn rmdir(&mut self, dirino: Ino, name: &str) -> FsResult<()> {
        let _span = self.op_span(OpKind::Rmdir);
        self.charge(self.cpu.syscall);
        check_name(name)?;
        let mut dinode = self.require_dir(dirino)?;
        let Some((_, entry)) = self.dir_find(dirino, &mut dinode, name)? else {
            return Err(FsError::NotFound);
        };
        if entry.kind != FileKind::Dir {
            return Err(FsError::NotDir);
        }
        let child = entry.ino as Ino;
        let mut cinode = self.require_dir(child)?;
        if !self.dir_is_empty(child, &mut cinode)? {
            return Err(FsError::DirNotEmpty);
        }
        let (blk, _, _) = self.dir_remove(dirino, &mut dinode, name)?;
        self.dir_durable(blk)?;
        self.free_blocks_from(child, &mut cinode, 0)?;
        self.clear_inode(child, true)?;
        self.charge(self.cpu.alloc_op);
        self.alloc.free_inode(&self.sb, child, true);
        dinode.nlink = dinode.nlink.saturating_sub(1);
        self.write_inode(dirino, &dinode, false)?;
        Ok(())
    }

    fn link(&mut self, target: Ino, dirino: Ino, name: &str) -> FsResult<Ino> {
        let _span = self.op_span(OpKind::Link);
        self.charge(self.cpu.syscall);
        check_name(name)?;
        let mut tinode = self.read_inode(target)?;
        if tinode.kind == FileKind::Dir {
            return Err(FsError::IsDir);
        }
        if tinode.nlink == u16::MAX {
            return Err(FsError::TooManyLinks);
        }
        let mut dinode = self.require_dir(dirino)?;
        if self.dir_find(dirino, &mut dinode, name)?.is_some() {
            return Err(FsError::Exists);
        }
        tinode.nlink += 1;
        self.write_inode(target, &tinode, true)?;
        let (blk, grew) = self.dir_insert(dirino, &mut dinode, name, target, FileKind::File)?;
        self.dir_durable(blk)?;
        self.write_inode(dirino, &dinode, grew)?;
        Ok(target)
    }

    fn rename(&mut self, odir: Ino, oname: &str, ndir: Ino, nname: &str) -> FsResult<Ino> {
        let _span = self.op_span(OpKind::Rename);
        self.charge(self.cpu.syscall);
        check_name(oname)?;
        check_name(nname)?;
        let mut oinode = self.require_dir(odir)?;
        let Some((_, entry)) = self.dir_find(odir, &mut oinode, oname)? else {
            return Err(FsError::NotFound);
        };
        let moving = entry.ino as Ino;
        let moving_kind = entry.kind;
        if odir == ndir && oname == nname {
            return Ok(moving);
        }
        let mut ninode = if ndir == odir { oinode.clone() } else { self.require_dir(ndir)? };
        // Handle an existing destination.
        if let Some((_, dst)) = self.dir_find(ndir, &mut ninode, nname)? {
            let dst_ino = dst.ino as Ino;
            if dst_ino == moving {
                // Hard link to the same object: drop the old name only.
                if ndir == odir {
                    oinode = ninode;
                }
                let (blk, ino, _) = self.dir_remove(odir, &mut oinode, oname)?;
                self.write_inode(odir, &oinode, false)?;
                self.dir_durable(blk)?;
                self.drop_file_link(ino)?;
                return Ok(moving);
            }
            match dst.kind {
                FileKind::Dir => {
                    if moving_kind != FileKind::Dir {
                        return Err(FsError::IsDir);
                    }
                    let mut dnode = self.require_dir(dst_ino)?;
                    if !self.dir_is_empty(dst_ino, &mut dnode)? {
                        return Err(FsError::DirNotEmpty);
                    }
                    let (blk, _, _) = self.dir_remove(ndir, &mut ninode, nname)?;
                    self.dir_durable(blk)?;
                    self.free_blocks_from(dst_ino, &mut dnode, 0)?;
                    self.clear_inode(dst_ino, true)?;
                    self.charge(self.cpu.alloc_op);
                    self.alloc.free_inode(&self.sb, dst_ino, true);
                    ninode.nlink = ninode.nlink.saturating_sub(1);
                }
                FileKind::File => {
                    if moving_kind == FileKind::Dir {
                        return Err(FsError::NotDir);
                    }
                    let (blk, ino, _) = self.dir_remove(ndir, &mut ninode, nname)?;
                    self.dir_durable(blk)?;
                    self.drop_file_link(ino)?;
                }
            }
        }
        // Insert the new name first, then remove the old one: a crash in
        // between leaves an extra name, never a lost file.
        let (blk, grew) = self.dir_insert(ndir, &mut ninode, nname, moving, moving_kind)?;
        self.dir_durable(blk)?;
        self.write_inode(ndir, &ninode, grew)?;
        if ndir == odir {
            oinode = self.require_dir(odir)?;
        }
        let (blk, _, _) = self.dir_remove(odir, &mut oinode, oname)?;
        self.write_inode(odir, &oinode, false)?;
        self.dir_durable(blk)?;
        // Directory moved across parents: fix nlink bookkeeping.
        if moving_kind == FileKind::Dir && odir != ndir {
            let mut o = self.require_dir(odir)?;
            o.nlink = o.nlink.saturating_sub(1);
            self.write_inode(odir, &o, false)?;
            let mut n = self.require_dir(ndir)?;
            n.nlink += 1;
            self.write_inode(ndir, &n, false)?;
        }
        Ok(moving)
    }

    fn read(&mut self, ino: Ino, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        let _span = self.op_span(OpKind::Read);
        self.charge(self.cpu.syscall);
        let mut inode = self.read_inode(ino)?;
        if inode.kind == FileKind::Dir {
            return Err(FsError::IsDir);
        }
        if off >= inode.size {
            return Ok(0);
        }
        let want = buf.len().min((inode.size - off) as usize);
        let mut done = 0usize;
        while done < want {
            let pos = off + done as u64;
            let lbn = pos / BLOCK_SIZE as u64;
            let in_blk = (pos % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - in_blk).min(want - done);
            // Logical index first (skips bmap on a hit), then bmap.
            let blk = match self.cache.lookup_logical(ino, lbn) {
                Some(b) => Some(b),
                None => self.bmap(ino, &mut inode, lbn, false)?,
            };
            match blk {
                Some(b) => {
                    let data = self.cache.read_block_bound(&self.drv, b, ino, lbn)?;
                    buf[done..done + n].copy_from_slice(&data[in_blk..in_blk + n]);
                }
                None => buf[done..done + n].fill(0),
            }
            self.charge(self.cpu.copy_cost(n));
            done += n;
        }
        Ok(done)
    }

    fn write(&mut self, ino: Ino, off: u64, data: &[u8]) -> FsResult<usize> {
        let _span = self.op_span(OpKind::Write);
        self.charge(self.cpu.syscall);
        if data.is_empty() {
            return Ok(0);
        }
        if off + data.len() as u64 > MAX_FILE_SIZE {
            return Err(FsError::FileTooBig);
        }
        let mut inode = self.read_inode(ino)?;
        if inode.kind == FileKind::Dir {
            return Err(FsError::IsDir);
        }
        let mut done = 0usize;
        while done < data.len() {
            let pos = off + done as u64;
            let lbn = pos / BLOCK_SIZE as u64;
            let in_blk = (pos % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - in_blk).min(data.len() - done);
            let had_block = self.cache.lookup_logical(ino, lbn).is_some()
                || self.bmap(ino, &mut inode, lbn, false)?.is_some();
            let blk = self.bmap(ino, &mut inode, lbn, true)?.ok_or(FsError::NoSpace)?;
            // Whole-block overwrites (and fresh blocks) skip the read.
            let read_first = had_block && n < BLOCK_SIZE;
            let src = &data[done..done + n];
            self.cache
                .modify_block_bound(&self.drv, blk, ino, lbn, read_first, |d| {
                    if !read_first && n < BLOCK_SIZE {
                        d.fill(0);
                    }
                    d[in_blk..in_blk + n].copy_from_slice(src);
                })?;
            self.charge(self.cpu.copy_cost(n));
            done += n;
        }
        inode.size = inode.size.max(off + done as u64);
        self.write_inode(ino, &inode, false)?;
        Ok(done)
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        let _span = self.op_span(OpKind::Truncate);
        self.charge(self.cpu.syscall);
        if size > MAX_FILE_SIZE {
            return Err(FsError::FileTooBig);
        }
        let mut inode = self.read_inode(ino)?;
        if inode.kind == FileKind::Dir {
            return Err(FsError::IsDir);
        }
        if size < inode.size {
            let keep = size.div_ceil(BLOCK_SIZE as u64);
            self.free_blocks_from(ino, &mut inode, keep)?;
            // Zero the tail of the (possibly kept) final partial block so
            // a later extension reads zeros.
            if !size.is_multiple_of(BLOCK_SIZE as u64) {
                let lbn = size / BLOCK_SIZE as u64;
                if let Some(blk) = self.bmap(ino, &mut inode, lbn, false)? {
                    let cut = (size % BLOCK_SIZE as u64) as usize;
                    self.cache.modify_block_bound(&self.drv, blk, ino, lbn, true, |d| {
                        d[cut..].fill(0)
                    })?;
                }
            }
        }
        inode.size = size;
        self.write_inode(ino, &inode, false)?;
        Ok(())
    }

    fn readdir(&mut self, dirino: Ino) -> FsResult<Vec<DirEntry>> {
        let _span = self.op_span(OpKind::Readdir);
        self.charge(self.cpu.syscall);
        let mut inode = self.require_dir(dirino)?;
        let nblocks = inode.size / BLOCK_SIZE as u64;
        let mut out = Vec::new();
        for lbn in 0..nblocks {
            let blk = self
                .bmap(dirino, &mut inode, lbn, false)?
                .ok_or_else(|| FsError::Corrupt(format!("hole in directory {dirino}")))?;
            let data = self.cache.read_block_bound(&self.drv, blk, dirino, lbn)?;
            let entries = dir::list(&data)?;
            self.charge(self.cpu.scan_cost(entries.len()));
            out.extend(entries.into_iter().map(|e| DirEntry {
                name: e.name,
                ino: e.ino as Ino,
                kind: e.kind,
            }));
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn sync(&mut self) -> FsResult<()> {
        let _span = self.op_span(OpKind::Sync);
        self.charge(self.cpu.syscall);
        // Persist dirty cylinder-group headers and the superblock, then
        // flush the whole cache as one scheduled batch.
        let sb = self.sb.clone();
        let mut blocks: Vec<(u64, Vec<u8>)> = Vec::new();
        self.alloc.flush_dirty(|cg, hdr| {
            let mut img = vec![0u8; BLOCK_SIZE];
            hdr.write_to(&mut img);
            blocks.push((sb.cg_header_block(cg), img));
        });
        for (blk, img) in blocks {
            self.cache
                .modify_block(&self.drv, blk, true, false, |d| d.copy_from_slice(&img))?;
        }
        let mut sb_img = vec![0u8; BLOCK_SIZE];
        self.sb.write_to(&mut sb_img);
        self.cache
            .modify_block(&self.drv, SB_BLOCK, true, false, |d| d.copy_from_slice(&sb_img))?;
        self.cache.sync(&self.drv)
    }

    fn statfs(&mut self) -> FsResult<StatFs> {
        let _span = self.op_span(OpKind::Statfs);
        Ok(StatFs {
            block_size: BLOCK_SIZE as u32,
            total_blocks: self.sb.total_blocks,
            free_blocks: self.alloc.free_blocks(),
            group_slack_blocks: 0,
            total_inodes: self.sb.total_inodes(),
            free_inodes: self.alloc.free_inodes(),
        })
    }

    fn now(&self) -> SimTime {
        self.drv.now()
    }

    fn io_stats(&self) -> IoStats {
        IoStats {
            disk: self.drv.disk_stats(),
            driver: self.drv.stats(),
            cache: self.cache.stats(),
        }
    }

    fn reset_io_stats(&mut self) {
        self.drv.reset_stats();
        self.cache.reset_stats();
    }

    fn drop_caches(&mut self) -> FsResult<()> {
        let _span = self.op_span(OpKind::DropCaches);
        self.sync()?;
        self.cache.drop_all(&self.drv)?;
        self.drv.with_disk_mut(|d| d.flush_onboard_cache());
        Ok(())
    }

    fn cpu_model(&self) -> CpuModel {
        self.cpu
    }

    fn obs(&self) -> Option<Arc<Obs>> {
        Some(Ffs::obs(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mkfs::{mkfs, MkfsParams};
    use cffs_disksim::models;
    use cffs_fslib::path;

    fn fresh() -> Ffs {
        mkfs(Disk::new(models::tiny_test_disk()), MkfsParams::tiny(), FfsOptions::default())
            .expect("mkfs")
    }

    #[test]
    fn create_write_read_cycle() {
        let mut fs = fresh();
        let f = fs.create(fs.root(), "a").unwrap();
        fs.write(f, 0, b"hello ffs").unwrap();
        let mut buf = [0u8; 9];
        assert_eq!(fs.read(f, 0, &mut buf).unwrap(), 9);
        assert_eq!(&buf, b"hello ffs");
        let a = fs.getattr(f).unwrap();
        assert_eq!((a.size, a.kind), (9, FileKind::File));
    }

    #[test]
    fn sparse_and_indirect_files() {
        let mut fs = fresh();
        let f = fs.create(fs.root(), "s").unwrap();
        // Past the direct range (12 blocks).
        let off = 14 * BLOCK_SIZE as u64 + 100;
        fs.write(f, off, b"indirect").unwrap();
        let mut buf = [0u8; 8];
        fs.read(f, off, &mut buf).unwrap();
        assert_eq!(&buf, b"indirect");
        // The hole reads zero.
        let mut hole = [9u8; 64];
        fs.read(f, 5 * BLOCK_SIZE as u64, &mut hole).unwrap();
        assert!(hole.iter().all(|&b| b == 0));
    }

    #[test]
    fn double_indirect_and_truncate_releases_space() {
        let mut fs = fresh();
        let f = fs.create(fs.root(), "big").unwrap();
        let off = (12 + 1024 + 3) * BLOCK_SIZE as u64;
        fs.write(f, off, b"way out").unwrap();
        fs.sync().unwrap();
        let before = fs.statfs().unwrap().free_blocks;
        fs.truncate(f, 0).unwrap();
        assert!(fs.statfs().unwrap().free_blocks > before);
        assert_eq!(fs.getattr(f).unwrap().blocks, 0);
    }

    #[test]
    fn inode_exhaustion_yields_noinodes() {
        let mut fs = fresh();
        let root = fs.root();
        let d = fs.mkdir(root, "d").unwrap();
        let mut n = 0u64;
        loop {
            match fs.create(d, &format!("f{n}")) {
                Ok(_) => n += 1,
                Err(FsError::NoInodes) => break,
                Err(e) => panic!("unexpected {e}"),
            }
            assert!(n < 100_000, "never exhausted");
        }
        // tiny geometry: 256 inodes/cg, some cgs; far below disk capacity.
        let st = fs.statfs().unwrap();
        assert_eq!(st.free_inodes, 0);
        assert!(st.free_blocks > 1000, "blocks remain — the static-table limit bites first");
        // Deleting frees inodes again.
        fs.unlink(d, "f0").unwrap();
        fs.create(d, "again").unwrap();
    }

    #[test]
    fn hard_links_and_rename_share_inode() {
        let mut fs = fresh();
        let root = fs.root();
        let f = fs.create(root, "a").unwrap();
        fs.write(f, 0, b"shared").unwrap();
        let f2 = fs.link(f, root, "b").unwrap();
        assert_eq!(f, f2, "FFS never renumbers");
        let f3 = fs.rename(root, "a", root, "c").unwrap();
        assert_eq!(f, f3);
        assert_eq!(fs.getattr(f).unwrap().nlink, 2);
        fs.unlink(root, "b").unwrap();
        fs.unlink(root, "c").unwrap();
        assert!(fs.getattr(f).is_err());
    }

    #[test]
    fn dir_spreading_policy_visible() {
        let mut fs = fresh();
        let root = fs.root();
        let mut cgs = std::collections::HashSet::new();
        let ipg = fs.superblock().inodes_per_cg as u64;
        for d in 0..6 {
            let ino = fs.mkdir(root, &format!("d{d}")).unwrap();
            cgs.insert(ino / ipg);
        }
        assert!(cgs.len() >= 3, "directories should spread across CGs: {cgs:?}");
    }

    #[test]
    fn file_inodes_follow_their_directory() {
        let mut fs = fresh();
        let root = fs.root();
        let ipg = fs.superblock().inodes_per_cg as u64;
        let d = fs.mkdir(root, "d").unwrap();
        for i in 0..10 {
            let f = fs.create(d, &format!("f{i}")).unwrap();
            assert_eq!(f / ipg, d / ipg, "file inode left its directory's CG");
        }
    }

    #[test]
    fn sync_metadata_costs_two_writes_per_create() {
        let mut fs = fresh();
        let root = fs.root();
        let d = fs.mkdir(root, "d").unwrap();
        fs.sync().unwrap();
        fs.reset_io_stats();
        for i in 0..20 {
            fs.create(d, &format!("f{i}")).unwrap();
        }
        let sync_writes = fs.io_stats().cache.sync_writes;
        assert!(
            (40..=44).contains(&sync_writes),
            "expected ~2 ordered writes per create, saw {sync_writes} for 20 creates"
        );
    }

    #[test]
    fn remount_preserves_content() {
        let mut fs = fresh();
        path::mkdir_p(&mut fs, "/x/y").unwrap();
        path::write_file(&mut fs, "/x/y/z.txt", &vec![3u8; 20_000]).unwrap();
        let disk = fs.unmount().unwrap();
        let mut fs = Ffs::mount(disk, FfsOptions::default()).unwrap();
        assert_eq!(path::read_file(&mut fs, "/x/y/z.txt").unwrap(), vec![3u8; 20_000]);
    }

    #[test]
    fn rmdir_semantics() {
        let mut fs = fresh();
        let root = fs.root();
        let d = fs.mkdir(root, "d").unwrap();
        fs.create(d, "f").unwrap();
        assert_eq!(fs.rmdir(root, "d"), Err(FsError::DirNotEmpty));
        fs.unlink(d, "f").unwrap();
        fs.rmdir(root, "d").unwrap();
        assert_eq!(fs.lookup(root, "d"), Err(FsError::NotFound));
        // Inode is reusable.
        fs.mkdir(root, "d2").unwrap();
    }

    #[test]
    fn overwrite_middle_of_file() {
        let mut fs = fresh();
        let f = fs.create(fs.root(), "m").unwrap();
        fs.write(f, 0, &vec![1u8; 10_000]).unwrap();
        fs.write(f, 4000, &vec![2u8; 1000]).unwrap();
        let mut buf = vec![0u8; 10_000];
        fs.read(f, 0, &mut buf).unwrap();
        assert!(buf[..4000].iter().all(|&b| b == 1));
        assert!(buf[4000..5000].iter().all(|&b| b == 2));
        assert!(buf[5000..].iter().all(|&b| b == 1));
        assert_eq!(fs.getattr(f).unwrap().size, 10_000);
    }
}

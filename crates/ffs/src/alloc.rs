//! FFS allocation policy.
//!
//! The policy follows [McKusick84]:
//!
//! * **New directories spread out**: a new directory's inode is placed in
//!   the cylinder group with the most free inodes among groups with few
//!   directories, so the namespace spreads across the disk.
//! * **File inodes cluster with their directory**: a new file's inode goes
//!   to its parent directory's group if there is room.
//! * **Data blocks cluster with their inode**: block allocation starts from
//!   a hint (usually the file's previous block + 1) inside the inode's
//!   group and spills into successive groups when full.
//!
//! These rules produce *locality* — related objects in the same group —
//! which is exactly what the paper credits FFS with, and exactly what it
//! shows to be insufficient: locality bounds seek distance but still pays
//! one positioning delay per object.
//!
//! The allocator operates on in-core cylinder-group headers; the owning
//! file system serializes dirty headers back through the buffer cache at
//! sync points (as the real FFS does with its cg buffers).

use crate::layout::{CgHeader, Superblock};
use cffs_fslib::{FileKind, FsError, FsResult};

/// In-core allocation state: every cylinder-group header plus dirt tracking.
#[derive(Debug)]
pub struct Allocator {
    cgs: Vec<CgHeader>,
    dirty: Vec<bool>,
}

impl Allocator {
    /// Wrap the headers read at mount time.
    pub fn new(cgs: Vec<CgHeader>) -> Self {
        let dirty = vec![false; cgs.len()];
        Allocator { cgs, dirty }
    }

    /// Borrow a header (fsck, statfs).
    pub fn cg(&self, cg: u32) -> &CgHeader {
        &self.cgs[cg as usize]
    }

    /// Number of groups.
    pub fn cg_count(&self) -> u32 {
        self.cgs.len() as u32
    }

    /// Iterate dirty headers, clearing dirt; the callback persists each.
    pub fn flush_dirty(&mut self, mut persist: impl FnMut(u32, &CgHeader)) {
        for (i, d) in self.dirty.iter_mut().enumerate() {
            if *d {
                persist(i as u32, &self.cgs[i]);
                *d = false;
            }
        }
    }

    /// Total free data blocks.
    pub fn free_blocks(&self) -> u64 {
        self.cgs.iter().map(|c| c.block_bitmap.free() as u64).sum()
    }

    /// Total free inodes.
    pub fn free_inodes(&self) -> u64 {
        self.cgs.iter().map(|c| c.inode_bitmap.free() as u64).sum()
    }

    /// Allocate an inode. `near_cg` is the parent directory's group.
    /// Directories prefer an under-populated group; files prefer `near_cg`.
    pub fn alloc_inode(&mut self, sb: &Superblock, kind: FileKind, near_cg: u32) -> FsResult<u64> {
        let choice = match kind {
            FileKind::Dir => self.pick_dir_cg(),
            FileKind::File => self.pick_file_cg(near_cg),
        };
        let Some(cg) = choice else {
            return Err(FsError::NoInodes);
        };
        let hdr = &mut self.cgs[cg as usize];
        let idx = hdr.inode_bitmap.find_free(0).ok_or(FsError::NoInodes)?;
        hdr.inode_bitmap.set(idx);
        if kind == FileKind::Dir {
            hdr.ndirs += 1;
        }
        self.dirty[cg as usize] = true;
        Ok(cg as u64 * sb.inodes_per_cg as u64 + idx as u64)
    }

    fn pick_dir_cg(&self) -> Option<u32> {
        // FFS: among groups with above-average free inodes, pick the one
        // with the fewest directories.
        let avg_free =
            self.cgs.iter().map(|c| c.inode_bitmap.free()).sum::<usize>() / self.cgs.len();
        self.cgs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.inode_bitmap.free() > 0 && c.inode_bitmap.free() >= avg_free)
            .min_by_key(|(_, c)| c.ndirs)
            .map(|(i, _)| i as u32)
            .or_else(|| {
                self.cgs
                    .iter()
                    .position(|c| c.inode_bitmap.free() > 0)
                    .map(|i| i as u32)
            })
    }

    fn pick_file_cg(&self, near_cg: u32) -> Option<u32> {
        let n = self.cgs.len() as u32;
        let near = near_cg.min(n - 1);
        // Parent's group first, then quadratic-ish probing (linear here —
        // the difference is unobservable at our group counts).
        (0..n)
            .map(|d| (near + d) % n)
            .find(|&cg| self.cgs[cg as usize].inode_bitmap.free() > 0)
    }

    /// Free an inode.
    ///
    /// # Panics
    /// Panics if the inode was already free (double-free is a logic bug).
    pub fn free_inode(&mut self, sb: &Superblock, ino: u64, was_dir: bool) {
        let cg = (ino / sb.inodes_per_cg as u64) as usize;
        let idx = (ino % sb.inodes_per_cg as u64) as usize;
        assert!(self.cgs[cg].inode_bitmap.clear(idx), "double free of inode {ino}");
        if was_dir {
            self.cgs[cg].ndirs = self.cgs[cg].ndirs.saturating_sub(1);
        }
        self.dirty[cg] = true;
    }

    /// Is an inode marked allocated?
    pub fn inode_allocated(&self, sb: &Superblock, ino: u64) -> bool {
        let cg = (ino / sb.inodes_per_cg as u64) as usize;
        let idx = (ino % sb.inodes_per_cg as u64) as usize;
        self.cgs[cg].inode_bitmap.get(idx)
    }

    /// Allocate one data block. `near_cg` anchors the search; `hint_blk`
    /// (a global block number, usually previous-block-plus-one) biases the
    /// position within the group for sequential layout.
    pub fn alloc_block(&mut self, sb: &Superblock, near_cg: u32, hint_blk: Option<u64>) -> FsResult<u64> {
        let n = self.cgs.len() as u32;
        let near = near_cg.min(n - 1);
        for d in 0..n {
            let cg = (near + d) % n;
            let hdr = &mut self.cgs[cg as usize];
            if hdr.block_bitmap.free() == 0 {
                continue;
            }
            let data_start = sb.cg_data_start(cg);
            let hint_idx = match hint_blk {
                Some(h) if sb.block_cg(h) == Some(cg) && h + 1 >= data_start => {
                    ((h + 1 - data_start) as usize) % hdr.block_bitmap.len()
                }
                _ => 0,
            };
            if let Some(idx) = hdr.block_bitmap.find_free(hint_idx) {
                hdr.block_bitmap.set(idx);
                self.dirty[cg as usize] = true;
                return Ok(data_start + idx as u64);
            }
        }
        Err(FsError::NoSpace)
    }

    /// Free one data block.
    ///
    /// # Panics
    /// Panics on double-free or on a block outside any data area.
    pub fn free_block(&mut self, sb: &Superblock, blk: u64) {
        let cg = sb.block_cg(blk).expect("freeing a block outside all groups");
        let data_start = sb.cg_data_start(cg);
        assert!(blk >= data_start, "freeing a metadata block {blk}");
        let idx = (blk - data_start) as usize;
        assert!(
            self.cgs[cg as usize].block_bitmap.clear(idx),
            "double free of block {blk}"
        );
        self.dirty[cg as usize] = true;
    }

    /// Is a data block marked allocated?
    pub fn block_allocated(&self, sb: &Superblock, blk: u64) -> Option<bool> {
        let cg = sb.block_cg(blk)?;
        let data_start = sb.cg_data_start(cg);
        if blk < data_start {
            return None;
        }
        Some(self.cgs[cg as usize].block_bitmap.get((blk - data_start) as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::FIRST_CG_BLOCK;

    fn setup() -> (Superblock, Allocator) {
        let sb = Superblock {
            total_blocks: FIRST_CG_BLOCK + 4 * 128,
            cg_count: 4,
            cg_size: 128,
            inodes_per_cg: 64,
            itable_blocks: 2,
            clean: true,
        };
        let cgs = (0..4).map(|i| CgHeader::new(i, sb.data_per_cg(), 64)).collect();
        (sb, Allocator::new(cgs))
    }

    #[test]
    fn file_inodes_cluster_with_parent() {
        let (sb, mut a) = setup();
        let i1 = a.alloc_inode(&sb, FileKind::File, 2).unwrap();
        let i2 = a.alloc_inode(&sb, FileKind::File, 2).unwrap();
        assert_eq!(i1 / 64, 2);
        assert_eq!(i2 / 64, 2);
        assert_ne!(i1, i2);
    }

    #[test]
    fn dir_inodes_spread() {
        let (sb, mut a) = setup();
        let mut cgs_used = std::collections::HashSet::new();
        for _ in 0..4 {
            let ino = a.alloc_inode(&sb, FileKind::Dir, 0).unwrap();
            cgs_used.insert(ino / 64);
        }
        assert!(cgs_used.len() >= 3, "directories should spread: {cgs_used:?}");
    }

    #[test]
    fn inode_exhaustion() {
        let (sb, mut a) = setup();
        for _ in 0..4 * 64 {
            a.alloc_inode(&sb, FileKind::File, 0).unwrap();
        }
        assert_eq!(a.alloc_inode(&sb, FileKind::File, 0), Err(FsError::NoInodes));
        a.free_inode(&sb, 100, false);
        assert_eq!(a.alloc_inode(&sb, FileKind::File, 1).unwrap(), 100);
    }

    #[test]
    fn sequential_hint_gives_adjacent_blocks() {
        let (sb, mut a) = setup();
        let b1 = a.alloc_block(&sb, 1, None).unwrap();
        let b2 = a.alloc_block(&sb, 1, Some(b1)).unwrap();
        let b3 = a.alloc_block(&sb, 1, Some(b2)).unwrap();
        assert_eq!(b2, b1 + 1);
        assert_eq!(b3, b2 + 1);
    }

    #[test]
    fn block_spill_to_next_group() {
        let (sb, mut a) = setup();
        let per_cg = sb.data_per_cg() as usize;
        for _ in 0..per_cg {
            let b = a.alloc_block(&sb, 0, None).unwrap();
            assert_eq!(sb.block_cg(b), Some(0));
        }
        let b = a.alloc_block(&sb, 0, None).unwrap();
        assert_eq!(sb.block_cg(b), Some(1));
    }

    #[test]
    fn exhaustion_and_free_cycle() {
        let (sb, mut a) = setup();
        let total = 4 * sb.data_per_cg() as usize;
        let mut blocks = Vec::new();
        for _ in 0..total {
            blocks.push(a.alloc_block(&sb, 0, None).unwrap());
        }
        assert_eq!(a.alloc_block(&sb, 0, None), Err(FsError::NoSpace));
        assert_eq!(a.free_blocks(), 0);
        for b in blocks {
            a.free_block(&sb, b);
        }
        assert_eq!(a.free_blocks(), total as u64);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_block_panics() {
        let (sb, mut a) = setup();
        let b = a.alloc_block(&sb, 0, None).unwrap();
        a.free_block(&sb, b);
        a.free_block(&sb, b);
    }

    #[test]
    fn dirty_tracking_flushes_once() {
        let (sb, mut a) = setup();
        a.alloc_block(&sb, 2, None).unwrap();
        let mut flushed = Vec::new();
        a.flush_dirty(|cg, _| flushed.push(cg));
        assert_eq!(flushed, vec![2]);
        flushed.clear();
        a.flush_dirty(|cg, _| flushed.push(cg));
        assert!(flushed.is_empty());
    }
}

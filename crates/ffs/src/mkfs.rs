//! File-system construction (`newfs`).
//!
//! Formatting uses the disk's raw (timing-free) interface: it is setup, not
//! measurement. The resulting layout: superblock in block 1, then
//! `cg_count` cylinder groups, each with a header, a static inode table and
//! data blocks. The root directory is inode 2 in group 0, initially empty
//! (directories grow their first block on first insertion).

use crate::fs::{Ffs, FfsOptions};
use crate::layout::{CgHeader, Superblock, FIRST_CG_BLOCK, INO_BAD, INO_NIL, INO_ROOT, INODES_PER_BLOCK, SB_BLOCK};
use cffs_disksim::Disk;
use cffs_fslib::inode::Inode;
use cffs_fslib::{FileKind, FsError, FsResult, BLOCK_SIZE, SECTORS_PER_BLOCK};

/// Geometry parameters for a new file system.
#[derive(Debug, Clone, Copy)]
pub struct MkfsParams {
    /// Blocks per cylinder group (header + inode table + data).
    pub cg_size: u32,
    /// Inode slots per cylinder group. Must be a multiple of
    /// [`INODES_PER_BLOCK`] (32).
    pub inodes_per_cg: u32,
}

impl Default for MkfsParams {
    /// 8 MB groups with 1024 inodes each — FFS-scale defaults for the
    /// 1 GB testbed disk.
    fn default() -> Self {
        MkfsParams { cg_size: 2048, inodes_per_cg: 1024 }
    }
}

impl MkfsParams {
    /// Small geometry for unit tests (64 MB-class disks).
    pub fn tiny() -> Self {
        MkfsParams { cg_size: 512, inodes_per_cg: 256 }
    }

    fn itable_blocks(&self) -> u32 {
        self.inodes_per_cg.div_ceil(INODES_PER_BLOCK as u32)
    }
}

/// Format `disk` and mount the result.
pub fn mkfs(mut disk: Disk, params: MkfsParams, opts: FfsOptions) -> FsResult<Ffs> {
    if params.inodes_per_cg == 0 || !params.inodes_per_cg.is_multiple_of(INODES_PER_BLOCK as u32) {
        return Err(FsError::InvalidArg);
    }
    let itable = params.itable_blocks();
    if params.cg_size <= 1 + itable {
        return Err(FsError::InvalidArg);
    }
    let total_blocks = disk.capacity_sectors() / SECTORS_PER_BLOCK;
    if total_blocks < FIRST_CG_BLOCK + params.cg_size as u64 {
        return Err(FsError::InvalidArg);
    }
    let cg_count = ((total_blocks - FIRST_CG_BLOCK) / params.cg_size as u64) as u32;
    let sb = Superblock {
        total_blocks,
        cg_count,
        cg_size: params.cg_size,
        inodes_per_cg: params.inodes_per_cg,
        itable_blocks: itable,
        clean: true,
    };

    let mut blockbuf = vec![0u8; BLOCK_SIZE];
    sb.write_to(&mut blockbuf);
    disk.raw_write(SB_BLOCK * SECTORS_PER_BLOCK, &blockbuf);

    let zero = vec![0u8; BLOCK_SIZE];
    for cg in 0..cg_count {
        let mut hdr = CgHeader::new(cg, sb.data_per_cg(), sb.inodes_per_cg);
        if cg == 0 {
            // Reserve the traditional inodes and account the root directory.
            hdr.inode_bitmap.set(INO_NIL as usize);
            hdr.inode_bitmap.set(INO_BAD as usize);
            hdr.inode_bitmap.set(INO_ROOT as usize);
            hdr.ndirs = 1;
        }
        hdr.write_to(&mut blockbuf);
        disk.raw_write(sb.cg_header_block(cg) * SECTORS_PER_BLOCK, &blockbuf);
        // Zero the inode table.
        for b in 0..itable as u64 {
            disk.raw_write((sb.cg_start(cg) + 1 + b) * SECTORS_PER_BLOCK, &zero);
        }
    }

    // Root inode: an empty directory.
    let mut root = Inode::new(FileKind::Dir);
    root.nlink = 2;
    let (blk, off) = sb.inode_location(INO_ROOT)?;
    let mut itable_img = vec![0u8; BLOCK_SIZE];
    root.write_to(&mut itable_img, off);
    disk.raw_write(blk * SECTORS_PER_BLOCK, &itable_img);

    Ffs::mount(disk, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_disksim::models;
    use cffs_fslib::FileSystem;

    #[test]
    fn mkfs_and_mount_tiny() {
        let disk = Disk::new(models::tiny_test_disk());
        let mut fs = mkfs(disk, MkfsParams::tiny(), FfsOptions::default()).unwrap();
        assert_eq!(fs.root(), INO_ROOT);
        let st = fs.statfs().unwrap();
        assert!(st.total_blocks > 1000);
        assert!(st.free_blocks > 0);
        assert!(fs.readdir(fs.root()).unwrap().is_empty());
    }

    #[test]
    fn mkfs_default_on_testbed_disk() {
        let disk = Disk::new(models::seagate_st31200());
        let mut fs = mkfs(disk, MkfsParams::default(), FfsOptions::default()).unwrap();
        let st = fs.statfs().unwrap();
        // ~1 GB: about a quarter million 4 KB blocks, >100 groups.
        assert!(st.total_blocks > 200_000, "{}", st.total_blocks);
        assert!(st.total_inodes > 100_000);
    }

    #[test]
    fn remount_preserves_superblock() {
        let disk = Disk::new(models::tiny_test_disk());
        let fs = mkfs(disk, MkfsParams::tiny(), FfsOptions::default()).unwrap();
        let sb1 = fs.superblock().clone();
        let disk = fs.unmount().unwrap();
        let fs2 = Ffs::mount(disk, FfsOptions::default()).unwrap();
        assert_eq!(*fs2.superblock(), sb1);
    }

    #[test]
    fn bad_params_rejected() {
        let disk = Disk::new(models::tiny_test_disk());
        assert!(mkfs(disk, MkfsParams { cg_size: 4, inodes_per_cg: 256 }, FfsOptions::default())
            .is_err());
        let disk = Disk::new(models::tiny_test_disk());
        assert!(mkfs(disk, MkfsParams { cg_size: 512, inodes_per_cg: 37 }, FfsOptions::default())
            .is_err());
    }
}

//! On-disk layout of the classic FFS.
//!
//! ```text
//! block 0            boot block (unused)
//! block 1            superblock
//! block 2 ...        cylinder group 0
//!   +0               CG header: counters + block bitmap + inode bitmap
//!   +1 .. +itable    static inode table (32 inodes / block)
//!   +itable+1 ...    data blocks
//! ...                cylinder group 1, 2, ...
//! ```
//!
//! Inode numbers are global: `ino = cg * inodes_per_cg + index`. Inode 0 is
//! reserved as "nil", inode 1 as the traditional bad-block inode, inode 2
//! is the root directory — the 4.4BSD convention.

use cffs_fslib::codec::{get_u32, get_u64, put_u32, put_u64};
use cffs_fslib::inode::INODE_SIZE;
use cffs_fslib::{Bitmap, FsError, FsResult, BLOCK_SIZE};

/// Superblock magic ("FFSr" little-endian).
pub const SB_MAGIC: u32 = 0x7246_4653;
/// CG header magic.
pub const CG_MAGIC: u32 = 0x6743_4653;

/// Block number of the superblock.
pub const SB_BLOCK: u64 = 1;
/// First block of cylinder group 0.
pub const FIRST_CG_BLOCK: u64 = 2;

/// Reserved inode numbers.
pub const INO_NIL: u64 = 0;
/// Traditional bad-block inode.
pub const INO_BAD: u64 = 1;
/// The root directory.
pub const INO_ROOT: u64 = 2;

/// Inode images per inode-table block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE / INODE_SIZE;

/// The mounted superblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// Total file-system blocks (including boot + superblock).
    pub total_blocks: u64,
    /// Number of cylinder groups.
    pub cg_count: u32,
    /// Blocks per cylinder group (header + inode table + data).
    pub cg_size: u32,
    /// Inode slots per cylinder group.
    pub inodes_per_cg: u32,
    /// Inode-table blocks per cylinder group.
    pub itable_blocks: u32,
    /// Clean-unmount flag.
    pub clean: bool,
}

impl Superblock {
    /// Data blocks per cylinder group (excluding header + inode table).
    pub fn data_per_cg(&self) -> u32 {
        self.cg_size - 1 - self.itable_blocks
    }

    /// First block of cylinder group `cg`.
    pub fn cg_start(&self, cg: u32) -> u64 {
        FIRST_CG_BLOCK + cg as u64 * self.cg_size as u64
    }

    /// Block number of cylinder group `cg`'s header.
    pub fn cg_header_block(&self, cg: u32) -> u64 {
        self.cg_start(cg)
    }

    /// Block holding the inode image for `ino`, plus the byte offset of the
    /// image within that block.
    pub fn inode_location(&self, ino: u64) -> FsResult<(u64, usize)> {
        let cg = (ino / self.inodes_per_cg as u64) as u32;
        if cg >= self.cg_count {
            return Err(FsError::StaleHandle);
        }
        let idx = (ino % self.inodes_per_cg as u64) as usize;
        let blk = self.cg_start(cg) + 1 + (idx / INODES_PER_BLOCK) as u64;
        Ok((blk, (idx % INODES_PER_BLOCK) * INODE_SIZE))
    }

    /// First data block of cylinder group `cg`.
    pub fn cg_data_start(&self, cg: u32) -> u64 {
        self.cg_start(cg) + 1 + self.itable_blocks as u64
    }

    /// Which cylinder group a block belongs to, if any.
    pub fn block_cg(&self, blk: u64) -> Option<u32> {
        if blk < FIRST_CG_BLOCK {
            return None;
        }
        let cg = ((blk - FIRST_CG_BLOCK) / self.cg_size as u64) as u32;
        (cg < self.cg_count).then_some(cg)
    }

    /// Total inode slots on the file system.
    pub fn total_inodes(&self) -> u64 {
        self.cg_count as u64 * self.inodes_per_cg as u64
    }

    /// Serialize to a superblock image.
    pub fn write_to(&self, buf: &mut [u8]) {
        buf[..BLOCK_SIZE].fill(0);
        put_u32(buf, 0, SB_MAGIC);
        put_u64(buf, 4, self.total_blocks);
        put_u32(buf, 12, self.cg_count);
        put_u32(buf, 16, self.cg_size);
        put_u32(buf, 20, self.inodes_per_cg);
        put_u32(buf, 24, self.itable_blocks);
        put_u32(buf, 28, if self.clean { 1 } else { 0 });
        put_u32(buf, 32, BLOCK_SIZE as u32);
    }

    /// Deserialize, validating the magic and geometry.
    pub fn read_from(buf: &[u8]) -> FsResult<Self> {
        if get_u32(buf, 0) != SB_MAGIC {
            return Err(FsError::Corrupt("bad superblock magic".into()));
        }
        if get_u32(buf, 32) != BLOCK_SIZE as u32 {
            return Err(FsError::Corrupt("unsupported block size".into()));
        }
        let sb = Superblock {
            total_blocks: get_u64(buf, 4),
            cg_count: get_u32(buf, 12),
            cg_size: get_u32(buf, 16),
            inodes_per_cg: get_u32(buf, 20),
            itable_blocks: get_u32(buf, 24),
            clean: get_u32(buf, 28) != 0,
        };
        if sb.cg_count == 0 || sb.cg_size <= 1 + sb.itable_blocks {
            return Err(FsError::Corrupt("degenerate cylinder-group geometry".into()));
        }
        if sb.inodes_per_cg as usize > sb.itable_blocks as usize * INODES_PER_BLOCK {
            return Err(FsError::Corrupt("inode table too small for inode count".into()));
        }
        Ok(sb)
    }
}

/// In-memory form of a cylinder-group header block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgHeader {
    /// Group index (for validation).
    pub cg: u32,
    /// Data-block allocation bitmap (bit i = data block i of this group).
    pub block_bitmap: Bitmap,
    /// Inode allocation bitmap.
    pub inode_bitmap: Bitmap,
    /// Directories allocated in this group (allocation policy input).
    pub ndirs: u32,
}

/// Byte offsets inside a CG header block.
const CG_OFF_MAGIC: usize = 0;
const CG_OFF_INDEX: usize = 4;
const CG_OFF_NDIRS: usize = 8;
const CG_OFF_NDATA: usize = 12;
const CG_OFF_NINODES: usize = 16;
/// Block bitmap starts here; inode bitmap follows it.
const CG_OFF_BITMAPS: usize = 64;

impl CgHeader {
    /// A fresh header with everything free.
    pub fn new(cg: u32, data_blocks: u32, inodes: u32) -> Self {
        CgHeader {
            cg,
            block_bitmap: Bitmap::new(data_blocks as usize),
            inode_bitmap: Bitmap::new(inodes as usize),
            ndirs: 0,
        }
    }

    /// Serialize into a header block.
    ///
    /// # Panics
    /// Panics if the bitmaps don't fit the block — geometry is validated at
    /// mkfs time, so this is a programming error.
    pub fn write_to(&self, buf: &mut [u8]) {
        buf[..BLOCK_SIZE].fill(0);
        put_u32(buf, CG_OFF_MAGIC, CG_MAGIC);
        put_u32(buf, CG_OFF_INDEX, self.cg);
        put_u32(buf, CG_OFF_NDIRS, self.ndirs);
        put_u32(buf, CG_OFF_NDATA, self.block_bitmap.len() as u32);
        put_u32(buf, CG_OFF_NINODES, self.inode_bitmap.len() as u32);
        let bb_bytes = self.block_bitmap.len().div_ceil(8);
        let ib_bytes = self.inode_bitmap.len().div_ceil(8);
        assert!(
            CG_OFF_BITMAPS + bb_bytes + ib_bytes <= BLOCK_SIZE,
            "cylinder group bitmaps do not fit the header block"
        );
        self.block_bitmap.write_bytes(&mut buf[CG_OFF_BITMAPS..]);
        self.inode_bitmap.write_bytes(&mut buf[CG_OFF_BITMAPS + bb_bytes..]);
    }

    /// Deserialize and validate.
    pub fn read_from(buf: &[u8], expect_cg: u32) -> FsResult<Self> {
        if get_u32(buf, CG_OFF_MAGIC) != CG_MAGIC {
            return Err(FsError::Corrupt(format!("bad CG magic in group {expect_cg}")));
        }
        let cg = get_u32(buf, CG_OFF_INDEX);
        if cg != expect_cg {
            return Err(FsError::Corrupt(format!("CG index {cg} where {expect_cg} expected")));
        }
        let ndata = get_u32(buf, CG_OFF_NDATA) as usize;
        let ninodes = get_u32(buf, CG_OFF_NINODES) as usize;
        let bb_bytes = ndata.div_ceil(8);
        if CG_OFF_BITMAPS + bb_bytes + ninodes.div_ceil(8) > BLOCK_SIZE {
            return Err(FsError::Corrupt(format!("CG {cg} bitmaps overflow header")));
        }
        Ok(CgHeader {
            cg,
            block_bitmap: Bitmap::from_bytes(&buf[CG_OFF_BITMAPS..], ndata),
            inode_bitmap: Bitmap::from_bytes(&buf[CG_OFF_BITMAPS + bb_bytes..], ninodes),
            ndirs: get_u32(buf, CG_OFF_NDIRS),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb() -> Superblock {
        Superblock {
            total_blocks: 2 + 4 * 512,
            cg_count: 4,
            cg_size: 512,
            inodes_per_cg: 256,
            itable_blocks: 8,
            clean: true,
        }
    }

    #[test]
    fn superblock_round_trip() {
        let s = sb();
        let mut buf = vec![0u8; BLOCK_SIZE];
        s.write_to(&mut buf);
        assert_eq!(Superblock::read_from(&buf).unwrap(), s);
    }

    #[test]
    fn superblock_rejects_garbage() {
        let buf = vec![0u8; BLOCK_SIZE];
        assert!(matches!(Superblock::read_from(&buf), Err(FsError::Corrupt(_))));
    }

    #[test]
    fn inode_location_layout() {
        let s = sb();
        // Root: cg 0, index 2 → first itable block, offset 2*128.
        assert_eq!(s.inode_location(INO_ROOT).unwrap(), (FIRST_CG_BLOCK + 1, 256));
        // First inode of cg 1.
        let (blk, off) = s.inode_location(256).unwrap();
        assert_eq!(blk, s.cg_start(1) + 1);
        assert_eq!(off, 0);
        // Inode 32 lands in the second table block.
        let (blk, off) = s.inode_location(32).unwrap();
        assert_eq!(blk, FIRST_CG_BLOCK + 2);
        assert_eq!(off, 0);
        // Out of range.
        assert!(s.inode_location(4 * 256).is_err());
    }

    #[test]
    fn block_cg_mapping() {
        let s = sb();
        assert_eq!(s.block_cg(0), None);
        assert_eq!(s.block_cg(1), None);
        assert_eq!(s.block_cg(2), Some(0));
        assert_eq!(s.block_cg(2 + 511), Some(0));
        assert_eq!(s.block_cg(2 + 512), Some(1));
        assert_eq!(s.block_cg(2 + 4 * 512), None);
    }

    #[test]
    fn data_start_past_itable() {
        let s = sb();
        assert_eq!(s.cg_data_start(0), 2 + 1 + 8);
        assert_eq!(s.data_per_cg(), 512 - 9);
    }

    #[test]
    fn cg_header_round_trip() {
        let mut h = CgHeader::new(3, 503, 256);
        h.block_bitmap.set(0);
        h.block_bitmap.set(502);
        h.inode_bitmap.set(17);
        h.ndirs = 5;
        let mut buf = vec![0u8; BLOCK_SIZE];
        h.write_to(&mut buf);
        assert_eq!(CgHeader::read_from(&buf, 3).unwrap(), h);
    }

    #[test]
    fn cg_header_index_mismatch_detected() {
        let h = CgHeader::new(3, 100, 64);
        let mut buf = vec![0u8; BLOCK_SIZE];
        h.write_to(&mut buf);
        assert!(CgHeader::read_from(&buf, 4).is_err());
    }

    #[test]
    fn big_cg_bitmaps_fit() {
        // The production geometry: 2048-block groups, 1024 inodes.
        let h = CgHeader::new(0, 2048, 1024);
        let mut buf = vec![0u8; BLOCK_SIZE];
        h.write_to(&mut buf); // must not panic
        let back = CgHeader::read_from(&buf, 0).unwrap();
        assert_eq!(back.block_bitmap.len(), 2048);
    }
}

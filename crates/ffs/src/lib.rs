#![warn(missing_docs)]

//! # cffs-ffs — the classic Fast File System baseline
//!
//! A from-scratch implementation of a 4.4BSD-style Fast File System
//! [McKusick84], the "conventional file system" the paper measures C-FFS
//! against. Faithful in the ways that matter for the comparison:
//!
//! * **Cylinder groups**: the disk is divided into fixed-size groups, each
//!   with its own header (bitmaps) and a **static inode table**. Inodes are
//!   physically separate from directories — every `open` that misses the
//!   cache pays one disk read for the directory block *and another* for the
//!   inode block, the indirection C-FFS's embedded inodes remove.
//! * **FFS allocation policy**: new directories go to a different cylinder
//!   group (spreading), file inodes go to their directory's group, data
//!   blocks go near their inode with a next-block hint. Related objects end
//!   up in the same *region* — locality, not adjacency, which is precisely
//!   the limitation Section 2 of the paper quantifies.
//! * **Synchronous metadata ordering** [Ganger94]: file creation writes the
//!   initialized inode before the directory entry; deletion writes the
//!   cleared directory entry before freeing the inode. The
//!   [`cffs_fslib::MetadataMode::Delayed`] option turns both into delayed
//!   writes (the paper's soft-updates emulation).
//! * 4 KB blocks, no fragments — matching the paper's implementations.
//!
//! Everything goes through [`cffs_cache::BufferCache`] and the simulated
//! disk, so benchmark time, request counts and seek/rotation/transfer
//! breakdowns are directly comparable with C-FFS.

pub mod alloc;
pub mod dir;
pub mod fs;
pub mod fsck;
pub mod layout;
pub mod mkfs;

pub use fs::{Ffs, FfsOptions};
pub use fsck::{fsck, FsckReport};
pub use mkfs::MkfsParams;

#!/bin/sh
# Offline CI gate: build, test, lint. No network access is assumed or
# required — the workspace has no external dependencies (rand/proptest are
# vendored path crates), so --offline must always succeed.
set -eu

cd "$(dirname "$0")"

echo "== build (release, all targets) =="
cargo build --release --workspace --all-targets --offline

echo "== test =="
cargo test --workspace --offline -q

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== ci.sh: all green =="

#!/bin/sh
# Offline CI gate: build, test, lint. No network access is assumed or
# required — the workspace has no external dependencies (rand/proptest are
# vendored path crates), so --offline must always succeed.
set -eu

cd "$(dirname "$0")"

echo "== build (release, all targets) =="
cargo build --release --workspace --all-targets --offline

echo "== test =="
cargo test --workspace --offline -q

echo "== test (release, 8 test threads: concurrency suite under real parallelism) =="
cargo test --release --workspace --offline -q -- --test-threads=8

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== bench smoke (repro_smallfile + repro_aging_regroup + repro_concurrent + repro_namei + repro_volume, reduced scale) =="
BENCH_TMP=$(mktemp -d)
BENCH_OUT_DIR="$BENCH_TMP/out" cargo run --release --offline -p cffs-bench \
    --bin repro_smallfile -- --files 60 --dirs 3 --mode sync --seed 1997 \
    --flight "$BENCH_TMP/flight" > /dev/null
BENCH_OUT_DIR="$BENCH_TMP/out" cargo run --release --offline -p cffs-bench \
    --bin repro_aging_regroup -- --feed "$BENCH_TMP/feed.jsonl" > /dev/null
# Reduced scale must match the checked-in BENCH_CONCURRENT baseline
# invocation exactly (the scaling ratio is scale-sensitive).
BENCH_OUT_DIR="$BENCH_TMP/out" cargo run --release --offline -p cffs-bench \
    --bin repro_concurrent -- --dirs 2 --files 12 --rounds 8 > /dev/null
# Reduced scale must match the checked-in BENCH_NAMEI baseline invocation
# exactly. Keep --files at 256: the p99 speedup the gate enforces needs
# multi-block leaf directories to measure anything.
BENCH_OUT_DIR="$BENCH_TMP/out" cargo run --release --offline -p cffs-bench \
    --bin repro_namei -- --branches 4 --dirs 4 --files 256 --sample 1024 --rounds 3 \
    > /dev/null
# Reduced scale must match the checked-in BENCH_VOLUME baseline invocation
# exactly (the volume scaling ratio is scale-sensitive). Records a live
# per-volume feed for the schema smoke below.
BENCH_OUT_DIR="$BENCH_TMP/out" cargo run --release --offline -p cffs-bench \
    --bin repro_volume -- --seed 1997 --sessions 480 --dirs 64 --files 16 \
    --ops 6 --threads 4 --feed "$BENCH_TMP/feed_volume.jsonl" > /dev/null
cargo run --release --offline -p cffs-bench --bin bench_schema_check -- \
    "$BENCH_TMP"/out/BENCH_*.json

echo "== telemetry feed smoke (frame schema + cffs-top headless replay) =="
# The aging_regroup smoke above recorded a live feed; every frame must
# validate, and the dashboard must replay it headless.
cargo run --release --offline -p cffs-bench --bin bench_schema_check -- \
    --feed "$BENCH_TMP/feed.jsonl"
# The repro_volume smoke recorded a feed with per-volume rows; every
# frame (including its volumes array) must validate too.
cargo run --release --offline -p cffs-bench --bin bench_schema_check -- \
    --feed "$BENCH_TMP/feed_volume.jsonl"
cargo run --release --offline --bin cffs-top -- \
    --replay "$BENCH_TMP/feed.jsonl" --headless --frames 5 \
    | grep -q '^rendered 5 frames$' \
    || { echo "cffs-top headless replay smoke failed"; exit 1; }

echo "== flight recorder + postmortem smoke (black box, fault injection) =="
# The smallfile smoke above armed a black box; its finished run must have
# left a schema-valid dump whose last frame matches the final counter
# snapshot (the postmortem's consistency check).
for dump in "$BENCH_TMP"/flight/FLIGHT_*.jsonl; do
    cargo run --release --offline --bin cffs-inspect -- postmortem "$dump" \
        | grep -q 'internally consistent' \
        || { echo "postmortem of $dump not consistent"; exit 1; }
done
# Fault injection: corrupt an image under an armed recorder; the unclean
# fsck verdict must flush the black box with reason fsck_failure, and the
# postmortem of that dump must carry a non-empty diagnosis.
cargo run --release --offline -p cffs-bench --bin flight_fault_smoke -- \
    --flight "$BENCH_TMP/flight_fault" > /dev/null
cargo run --release --offline --bin cffs-inspect -- postmortem \
    "$BENCH_TMP"/flight_fault/FLIGHT_*.jsonl > "$BENCH_TMP/postmortem.txt"
grep -q 'reason: fsck_failure' "$BENCH_TMP/postmortem.txt" \
    || { echo "fault-injected dump did not capture the fsck failure"; exit 1; }
grep -q '^  - ' "$BENCH_TMP/postmortem.txt" \
    || { echo "postmortem produced an empty diagnosis"; exit 1; }

echo "== cffs-inspect diff (deterministic regression attribution) =="
# Byte-determinism on the checked-in baselines: two invocations of the
# same comparison must agree exactly.
cargo run --release --offline --bin cffs-inspect -- diff --json \
    crates/bench/baselines/BENCH_SMALLFILE_SYNC.json \
    crates/bench/baselines/BENCH_AGING_REGROUP.json > "$BENCH_TMP/diff_a.json"
cargo run --release --offline --bin cffs-inspect -- diff --json \
    crates/bench/baselines/BENCH_SMALLFILE_SYNC.json \
    crates/bench/baselines/BENCH_AGING_REGROUP.json > "$BENCH_TMP/diff_b.json"
cmp -s "$BENCH_TMP/diff_a.json" "$BENCH_TMP/diff_b.json" \
    || { echo "cffs-inspect diff is not deterministic"; exit 1; }
# Attribution: a perturbed smallfile run (different scale, same rows)
# against the ci run must attribute at least one moved metric.
BENCH_OUT_DIR="$BENCH_TMP/out2" cargo run --release --offline -p cffs-bench \
    --bin repro_smallfile -- --files 72 --dirs 3 --mode sync --seed 1997 \
    > /dev/null
cargo run --release --offline --bin cffs-inspect -- diff --json \
    "$BENCH_TMP/out/BENCH_SMALLFILE_SYNC.json" \
    "$BENCH_TMP/out2/BENCH_SMALLFILE_SYNC.json" > "$BENCH_TMP/diff_c.json"
grep -q '"total_attributions": 0,' "$BENCH_TMP/diff_c.json" \
    && { echo "diff of two different-scale runs attributed nothing"; exit 1; }

echo "== profiler smoke (flamegraph fold + smallfile FOLD artifact) =="
# The fold must be non-empty, every line must be `stack weight`, and the
# smallfile smoke above must have left a per-phase FOLD artifact behind.
FOLD="$BENCH_TMP/fold.txt"
cargo run --release --offline --bin cffs-inspect -- flamegraph --demo > "$FOLD"
awk 'BEGIN { n = 0 }
     !/^[^ ]+ [0-9]+$/ { print "malformed fold line: " $0; exit 1 }
     { n += 1 }
     END { if (n == 0) { print "empty fold"; exit 1 } }' "$FOLD"
awk 'BEGIN { n = 0 }
     !/^[^ ]+ [0-9]+$/ { print "malformed fold line: " $0; exit 1 }
     { n += 1 }
     END { if (n == 0) { print "empty fold"; exit 1 } }' \
    "$BENCH_TMP/out/FOLD_SMALLFILE_SYNC.txt"
cargo run --release --offline --bin cffs-inspect -- flamegraph --svg-ready --demo \
    | grep -q '^<svg ' || { echo "flamegraph --svg-ready did not emit SVG"; exit 1; }

echo "== bench perf gate (p90 latency + group-fetch utilization vs baselines) =="
# Simulated time is deterministic, so unchanged code reproduces the
# baselines exactly; the band absorbs small intentional shifts. Refresh
# with: BENCH_OUT_DIR=crates/bench/baselines <repro binary>
cargo run --release --offline -p cffs-bench --bin bench_gate -- \
    "$BENCH_TMP/out/BENCH_SMALLFILE_SYNC.json" \
    crates/bench/baselines/BENCH_SMALLFILE_SYNC.json --tolerance-pct 25
cargo run --release --offline -p cffs-bench --bin bench_gate -- \
    "$BENCH_TMP/out/BENCH_AGING_REGROUP.json" \
    crates/bench/baselines/BENCH_AGING_REGROUP.json --tolerance-pct 25
# Concurrent scaling: relative band vs baseline plus the absolute
# >= 2.5x acceptance floor enforced inside bench_gate.
cargo run --release --offline -p cffs-bench --bin bench_gate -- \
    "$BENCH_TMP/out/BENCH_CONCURRENT.json" \
    crates/bench/baselines/BENCH_CONCURRENT.json --tolerance-pct 25
# Namei: relative band vs baseline plus the absolute >= 0.90 warm hit
# rate and >= 5x p99 speedup floors enforced inside bench_gate.
cargo run --release --offline -p cffs-bench --bin bench_gate -- \
    "$BENCH_TMP/out/BENCH_NAMEI.json" \
    crates/bench/baselines/BENCH_NAMEI.json --tolerance-pct 25
# Volume scaling: relative band vs baseline plus the absolute >= 3.0x
# 4-volume acceptance floor enforced inside bench_gate.
cargo run --release --offline -p cffs-bench --bin bench_gate -- \
    "$BENCH_TMP/out/BENCH_VOLUME.json" \
    crates/bench/baselines/BENCH_VOLUME.json --tolerance-pct 25
# Every gate run above must have left its machine-readable verdict next
# to the payload it judged.
for name in SMALLFILE_SYNC AGING_REGROUP CONCURRENT NAMEI VOLUME; do
    test -s "$BENCH_TMP/out/GATE_REPORT_BENCH_$name.json" \
        || { echo "bench_gate left no GATE_REPORT for $name"; exit 1; }
done
rm -rf "$BENCH_TMP"

echo "== ci.sh: all green =="

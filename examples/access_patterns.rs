//! Look at *what the disk actually does* under each file system.
//!
//! The paper's argument is mechanical: conventional small-file access
//! makes many small, scattered requests (positioning-bound); C-FFS makes
//! few large, adjacent ones (bandwidth-bound). This example records the
//! disk's per-request trace during the small-file read phase and prints
//! the request-size and seek-distance distributions plus the time
//! breakdown — the paper's Figure 2 economics observed live.
//!
//! Run with: `cargo run --release --example access_patterns`

use cffs::build;
use cffs::core::{Cffs, CffsConfig};
use cffs::prelude::*;
use cffs_disksim::models;
use cffs::workloads::smallfile::{Assignment, SmallFileParams};
use cffs::workloads::namegen::{dir_name, file_name};

const P: SmallFileParams = SmallFileParams {
    nfiles: 1500,
    file_size: 1024,
    ndirs: 50,
    order: Assignment::RoundRobin,
    seed: 1997,
};

fn populate(fs: &mut Cffs) -> FsResult<Vec<Ino>> {
    let root = fs.root();
    let mut dirs = Vec::new();
    for d in 0..P.ndirs {
        dirs.push(fs.mkdir(root, &dir_name(d))?);
    }
    for i in 0..P.nfiles {
        let ino = fs.create(dirs[i % P.ndirs], &file_name(i))?;
        fs.write(ino, 0, &vec![i as u8; P.file_size])?;
    }
    fs.drop_caches()?;
    Ok(dirs)
}

fn read_phase(fs: &mut Cffs, dirs: &[Ino]) -> FsResult<()> {
    let mut buf = vec![0u8; P.file_size];
    for i in 0..P.nfiles {
        let ino = fs.lookup(dirs[i % P.ndirs], &file_name(i))?;
        fs.read(ino, 0, &mut buf)?;
    }
    Ok(())
}

fn analyze(label: &str, fs: &Cffs) {
    let trace = fs.disk_trace();
    let reads: Vec<_> = trace.iter().filter(|t| !t.write).collect();
    if reads.is_empty() {
        println!("{label}: no disk reads recorded");
        return;
    }
    let n = reads.len() as f64;
    let kb_avg = reads.iter().map(|t| t.sectors as f64 / 2.0).sum::<f64>() / n;
    let seek_avg = reads.iter().map(|t| t.seek_cylinders as f64).sum::<f64>() / n;
    let hit_frac = reads.iter().filter(|t| t.cache_hit).count() as f64 / n;
    let svc_avg =
        reads.iter().map(|t| t.service.as_millis_f64()).sum::<f64>() / n;
    // Request size histogram.
    let mut hist = [0usize; 4]; // 4K, 8-16K, 20-32K, >32K
    for t in &reads {
        let kb = t.sectors / 2;
        let bin = match kb {
            0..=4 => 0,
            5..=16 => 1,
            17..=32 => 2,
            _ => 3,
        };
        hist[bin] += 1;
    }
    println!(
        "{label:<16} {:>6} reads  avg {kb_avg:>5.1} KB  avg seek {seek_avg:>6.1} cyl  \
         {svc_avg:>5.1} ms/req  {:>4.0}% onboard hits",
        reads.len(),
        hit_frac * 100.0
    );
    println!(
        "{:<16} sizes: <=4K:{} 8-16K:{} 20-32K:{} >32K:{}",
        "", hist[0], hist[1], hist[2], hist[3]
    );
}

fn main() -> FsResult<()> {
    println!(
        "read phase of {} x 1 KB files in {} dirs (round-robin), per-request disk trace:\n",
        P.nfiles, P.ndirs
    );
    for cfg in [CffsConfig::conventional(), CffsConfig::cffs()] {
        let label = cfg.label.clone();
        let mut fs = build::on_disk(models::seagate_st31200(), cfg);
        let dirs = populate(&mut fs)?;
        fs.set_disk_trace(true);
        fs.reset_io_stats();
        read_phase(&mut fs, &dirs)?;
        analyze(&label, &fs);
        let io = fs.io_stats();
        let d = io.disk;
        let busy = d.busy_ns.max(1) as f64;
        println!(
            "{:<16} time: {:.0}% seek, {:.0}% rotation, {:.0}% transfer, {:.0}% overhead\n",
            "",
            d.seek_ns as f64 * 100.0 / busy,
            d.rotation_ns as f64 * 100.0 / busy,
            d.transfer_ns as f64 * 100.0 / busy,
            d.overhead_ns as f64 * 100.0 / busy,
        );
    }
    println!(
        "The conventional system spends its time positioning (seek + rotation)\n\
         for 4 KB payloads; C-FFS converts that time into 64 KB transfers —\n\
         \"exploiting what disks do well (bulk data movement) to avoid what\n\
         they do poorly (reposition to new locations)\"."
    );
    Ok(())
}

//! The paper's motivating scenario: software development on small files.
//!
//! Runs the synthetic source-tree suite (untar / copy / compile / search /
//! clean) on the conventional baseline and on C-FFS, side by side, and
//! prints the per-phase comparison — the "10-300%" experience of Section 5.
//!
//! Run with: `cargo run --release --example software_dev`

use cffs::build;
use cffs::core::CffsConfig;
use cffs::prelude::*;
use cffs_disksim::models;
use cffs::workloads::appdev::{self, DevTreeParams};

fn main() -> FsResult<()> {
    let params = DevTreeParams::default();
    println!(
        "software-development suite: {} modules x {} sources + {} shared headers\n",
        params.dirs, params.files_per_dir, params.headers
    );

    let mut results = Vec::new();
    for cfg in [CffsConfig::conventional(), CffsConfig::cffs()] {
        let mut fs = build::on_disk(models::seagate_st31200(), cfg);
        results.push(appdev::run(&mut fs, params)?);
    }
    let (conv, cffs) = (&results[0], &results[1]);

    println!(
        "{:<10} {:>16} {:>16} {:>12}",
        "phase", "conventional", "C-FFS", "improvement"
    );
    println!("{}", "-".repeat(58));
    for (c, n) in conv.iter().zip(cffs) {
        println!(
            "{:<10} {:>16} {:>16} {:>11.0}%",
            c.phase,
            format!("{}", c.elapsed),
            format!("{}", n.elapsed),
            (c.elapsed.as_secs_f64() / n.elapsed.as_secs_f64() - 1.0) * 100.0
        );
    }
    let tot = |rs: &[cffs::workloads::PhaseResult]| {
        rs.iter().map(|r| r.elapsed.as_secs_f64()).sum::<f64>()
    };
    println!("{}", "-".repeat(58));
    println!(
        "{:<10} {:>15.1}s {:>15.1}s {:>11.0}%",
        "total",
        tot(conv),
        tot(cffs),
        (tot(conv) / tot(cffs) - 1.0) * 100.0
    );
    Ok(())
}

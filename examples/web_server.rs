//! Application-directed grouping — the paper's Section 6 future work:
//!
//! > "one application-specific approach is to group files that make up a
//! > single hypertext document [Kaashoek96]. We are investigating
//! > extensions to the file system interface to allow this information to
//! > be passed to the file system."
//!
//! Nineties web sites segregated content by *type*: `/html/*.html`,
//! `/img/*.gif`. Name-space grouping therefore co-locates all pages with
//! each other and all images with each other — but a browser fetches one
//! *document*: a page plus its own images, scattered across both trees.
//!
//! This example builds such a site, measures cold-cache "serve one
//! document" latency, then uses `Cffs::group_files` (the richer,
//! cross-directory form of the hint interface) to co-locate each document
//! and measures again.
//!
//! Run with: `cargo run --release --example web_server`

use cffs::build;
use cffs::core::Cffs;
use cffs::prelude::*;
use cffs_disksim::SimDuration;

const DOCS: usize = 24;
const IMAGES_PER_DOC: usize = 4;

fn build_site(fs: &mut Cffs) -> FsResult<(Ino, Ino)> {
    let root = fs.root();
    let html = fs.mkdir(root, "html")?;
    let img = fs.mkdir(root, "img")?;
    // Type-major creation: first all pages, then all images — so the name
    // space groups pages with pages and images with images.
    for d in 0..DOCS {
        let page = fs.create(html, &format!("page{d:02}.html"))?;
        fs.write(page, 0, format!("<html>doc {d}</html>").repeat(50).as_bytes())?;
    }
    for d in 0..DOCS {
        for i in 0..IMAGES_PER_DOC {
            let gif = fs.create(img, &format!("doc{d:02}_img{i}.gif"))?;
            fs.write(gif, 0, &vec![(d * 7 + i) as u8; 2500])?;
        }
    }
    fs.sync()?;
    Ok((html, img))
}

/// Serve every document from a cold cache (a busy server whose working
/// set long outgrew memory: every document fetch starts cold); return the
/// mean per-document latency and total disk requests.
fn serve_all(fs: &mut Cffs, html: Ino, img: Ino) -> FsResult<(SimDuration, u64)> {
    let mut total = SimDuration::ZERO;
    let mut reqs = 0u64;
    for d in 0..DOCS {
        fs.drop_caches()?;
        fs.reset_io_stats();
        let t0 = fs.now();
        let page = fs.lookup(html, &format!("page{d:02}.html"))?;
        let _ = path::read_all(fs, page)?;
        for i in 0..IMAGES_PER_DOC {
            let gif = fs.lookup(img, &format!("doc{d:02}_img{i}.gif"))?;
            let _ = path::read_all(fs, gif)?;
        }
        total += fs.now() - t0;
        reqs += fs.io_stats().disk.total_requests();
    }
    Ok((SimDuration::from_nanos(total.as_nanos() / DOCS as u64), reqs))
}

fn main() -> FsResult<()> {
    let mut fs = build::cffs_on_testbed();
    let (html, img) = build_site(&mut fs)?;

    let (before, reqs_before) = serve_all(&mut fs, html, img)?;

    // The server knows which files form one document; tell the file system.
    for d in 0..DOCS {
        let mut doc = vec![fs.lookup(html, &format!("page{d:02}.html"))?];
        for i in 0..IMAGES_PER_DOC {
            doc.push(fs.lookup(img, &format!("doc{d:02}_img{i}.gif"))?);
        }
        // Anchor each document's group at the html directory.
        fs.group_files(html, &doc)?;
    }
    fs.sync()?;

    let (after, reqs_after) = serve_all(&mut fs, html, img)?;

    println!("cold-serving one hypertext document (1 page + {IMAGES_PER_DOC} images), {DOCS} documents:");
    println!("  name-space grouping only: {before} per document ({reqs_before} disk requests)");
    println!("  with document hints:      {after} per document ({reqs_after} disk requests)");
    println!("  speedup: {:.2}x", before.as_secs_f64() / after.as_secs_f64());
    Ok(())
}

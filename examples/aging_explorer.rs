//! Watch a file system age.
//!
//! Runs the [Herrin93]-style aging program in stages on one C-FFS image
//! and, after each stage, prints fragmentation and grouping health:
//! utilization, free-extent sizes (can we still carve 16-block groups?),
//! group count, live-member density and reserved slack.
//!
//! Run with: `cargo run --release --example aging_explorer`

use cffs::build;
use cffs::core::CffsConfig;
use cffs::prelude::*;
use cffs_disksim::models;
use cffs::workloads::aging::{age, AgingParams};
use cffs::workloads::sizes::Empirical1993;

fn main() -> FsResult<()> {
    let mut fs = build::on_disk(models::tiny_test_disk(), CffsConfig::cffs());
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "stage", "ops", "util", "groups", "live/grp", "slack", "files"
    );
    for stage in 1..=6 {
        let out = age(
            &mut fs,
            AgingParams { utilization: 0.6, ops: 4000, ndirs: 25, seed: stage as u64 },
            &Empirical1993,
        )?;
        let st = fs.statfs()?;
        // Group health straight from the in-core index.
        let (ngroups, live, slots): (usize, u64, u64) = {
            let ix = fs.group_index();
            (
                ix.len(),
                ix.iter().map(|g| g.live() as u64).sum(),
                ix.iter().map(|g| g.nslots as u64).sum(),
            )
        };
        println!(
            "{:>6} {:>8} {:>7.0}% {:>8} {:>10.2} {:>10} {:>8}",
            stage,
            stage * 4000,
            out.final_utilization * 100.0,
            ngroups,
            if ngroups > 0 { live as f64 / ngroups as f64 } else { 0.0 },
            st.group_slack_blocks,
            out.live_files,
        );
        let _ = slots;
    }
    // Prove the aged image is still perfectly consistent.
    let mut img = fs.unmount()?;
    let report = cffs::core::fsck::fsck(&mut img, false).expect("fsck");
    println!(
        "\nfsck after aging: {} ({} files, {} dirs walked)",
        if report.clean() { "clean" } else { "NOT CLEAN" },
        report.files,
        report.dirs
    );
    assert!(report.clean());
    Ok(())
}

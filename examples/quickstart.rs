//! Quickstart: format a C-FFS on the paper's testbed disk, do ordinary
//! file work through the `FileSystem` trait, and read the simulated-time
//! and I/O accounting back out.
//!
//! Run with: `cargo run --release --example quickstart`

use cffs::build;
use cffs::prelude::*;

fn main() -> FsResult<()> {
    // A fresh C-FFS (embedded inodes + explicit grouping) on a simulated
    // Seagate ST31200 — the paper's testbed drive.
    let mut fs = build::cffs_on_testbed();
    let root = fs.root();

    // Plain VFS calls...
    let src = fs.mkdir(root, "src")?;
    let main_c = fs.create(src, "main.c")?;
    fs.write(main_c, 0, b"int main(void) { return 0; }\n")?;

    // ...or path helpers.
    path::mkdir_p(&mut fs, "/src/include")?;
    path::write_file(&mut fs, "/src/include/util.h", b"#pragma once\n")?;
    path::write_file(&mut fs, "/src/README", b"hello from 1997\n")?;

    // Everything a directory names tends to live in one 64 KB group:
    fs.sync()?;
    println!("files under /src:");
    for e in fs.readdir(src)? {
        let a = fs.getattr(e.ino)?;
        println!("  {:<12} {:>6} bytes  ino {:#x}", e.name, a.size, e.ino);
    }

    // Cold-read the tree (drop caches = remount) and look at the cost.
    fs.drop_caches()?;
    fs.reset_io_stats();
    let t0 = fs.now();
    let text = path::read_file(&mut fs, "/src/main.c")?;
    let _ = path::read_file(&mut fs, "/src/include/util.h")?;
    let _ = path::read_file(&mut fs, "/src/README")?;
    let t1 = fs.now();

    let io = fs.io_stats();
    println!("\nread back {:?}...", String::from_utf8_lossy(&text[..12]));
    println!("cold read of 3 small files took {} simulated", t1 - t0);
    println!(
        "disk requests: {} (group reads: {}, blocks via group fetch: {})",
        io.disk.total_requests(),
        io.cache.group_reads,
        io.cache.group_read_blocks
    );
    println!(
        "cache: {} lookups, {} physical hits, {} back-bindings",
        io.cache.lookups, io.cache.phys_hits, io.cache.backbinds
    );

    let st = fs.statfs()?;
    println!(
        "\nstatfs: {} of {} blocks free, {} reserved as group slack",
        st.free_blocks, st.total_blocks, st.group_slack_blocks
    );
    Ok(())
}

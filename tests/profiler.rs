//! The simulated-time profiler end to end: fold accounting over a live
//! stack (including ring wrap), the `cffs-inspect flamegraph` CLI, the
//! per-phase `time_attribution` identities, and the signal-driven
//! regrouping autotrigger.
//!
//! The profiler's one invariant is conservation: every simulated
//! nanosecond lands in exactly one fold leaf, so a fold's total weight
//! always equals the elapsed simulated time — wrapped ring or not.

use cffs::core::{mkfs, Cffs, CffsConfig, MkfsParams};
use cffs::prelude::*;
use cffs_disksim::models;
use cffs_disksim::Disk;
use cffs_obs::json::{parse, Json, ToJson};
use cffs_obs::{prof, Ctr, Obs};
use cffs_regroup::AutotriggerConfig;
use cffs_workloads::aging::{age_adversarial, AdversarialParams};
use cffs_workloads::concurrent::{self, ConcurrentParams};
use cffs_workloads::runner::measure;
use cffs_workloads::smallfile::{self, SmallFileParams};
use std::process::Command;

fn inspect(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_cffs-inspect"))
        .args(args)
        .output()
        .expect("run cffs-inspect");
    assert!(out.status.success(), "cffs-inspect {args:?} failed: {out:?}");
    String::from_utf8(out.stdout).expect("utf8")
}

/// Sum of a collapsed fold's weights (`stack weight` per line).
fn fold_total(fold: &str) -> u64 {
    fold.lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().expect("weight"))
        .sum()
}

/// A tiny trace ring wraps under a real workload, and the fold still
/// conserves time: `(evicted)` covers everything before the retained
/// window, truncated spans are clamped into it, and the total weight is
/// exactly the elapsed simulated time.
#[test]
fn fold_conserves_time_across_ring_wrap() {
    let mut disk = Disk::new(models::tiny_test_disk());
    disk.set_obs(Obs::with_trace_capacity(8));
    let fs = mkfs::mkfs(disk, MkfsParams::tiny(), CffsConfig::cffs()).expect("mkfs");
    let root = fs.root();
    let d = fs.mkdir(root, "d").unwrap();
    for i in 0..12 {
        let f = fs.create(d, &format!("f{i}")).unwrap();
        fs.write(f, 0, &vec![i as u8; 700]).unwrap();
    }
    fs.sync().unwrap();
    fs.drop_caches().unwrap();
    let mut buf = [0u8; 1];
    for e in fs.readdir(d).unwrap() {
        fs.read(e.ino, 0, &mut buf).unwrap();
    }
    let obs = Cffs::obs(&fs);
    let events = obs.recent_events(usize::MAX);
    assert!(obs.events_recorded() > events.len() as u64, "ring must wrap");
    let elapsed = fs.now().as_nanos();
    let fold = prof::fold_ring(&events, obs.events_recorded(), "run", elapsed).collapse();
    assert_eq!(fold_total(&fold), elapsed, "fold must conserve simulated time:\n{fold}");
    assert!(fold.contains("run;(evicted) "), "pre-window time must be explicit:\n{fold}");
}

/// The same conservation invariant with *threaded* producers: four
/// client threads race events into the same tiny ring (wrapping it many
/// times over, with interleaved per-thread virtual clocks), and the fold
/// of whatever survives must still account for exactly the run's elapsed
/// simulated time — the cross-thread clock high-water mark. A frontier
/// clip or per-thread stamp that escaped the retained window would break
/// the equality.
#[test]
fn fold_conserves_time_across_ring_wrap_with_threaded_producers() {
    let mut disk = Disk::new(models::tiny_test_disk());
    disk.set_obs(Obs::with_trace_capacity(8));
    let fs = mkfs::mkfs(disk, MkfsParams::tiny(), CffsConfig::cffs()).expect("mkfs");
    let p = ConcurrentParams {
        nthreads: 4,
        dirs_per_thread: 1,
        files_per_dir: 12,
        file_size: 700,
        shared_dirs: 1,
        shared_files_per_thread: 4,
        read_rounds: 2,
        seed: 3,
    };
    concurrent::run(&fs, &p).expect("threaded run");
    let obs = Cffs::obs(&fs);
    let events = obs.recent_events(usize::MAX);
    assert!(obs.events_recorded() > events.len() as u64, "ring must wrap");
    let elapsed = obs.global_clock_ns();
    let fold = prof::fold_ring(&events, obs.events_recorded(), "run", elapsed).collapse();
    assert_eq!(
        fold_total(&fold),
        elapsed,
        "threaded fold must conserve simulated time:\n{fold}"
    );
    assert!(fold.contains("run;(evicted) "), "pre-window time must be explicit:\n{fold}");
}

/// The CLI fold is byte-stable run to run, and its total weight equals
/// the elapsed simulated time reported by `stats` on the same image.
#[test]
fn cli_fold_is_deterministic_and_totals_sim_ns() {
    let a = inspect(&["flamegraph", "--demo"]);
    let b = inspect(&["flamegraph", "--fold", "--demo"]);
    assert!(!a.is_empty());
    assert_eq!(a, b, "equal seeds must give byte-identical folds");
    for line in a.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("stack weight");
        assert!(!stack.is_empty());
        weight.parse::<u64>().expect("integer weight");
    }
    let stats = parse(&inspect(&["stats", "--demo"])).expect("stats json");
    let sim_ns = stats.get("sim_ns").and_then(Json::as_u64).expect("sim_ns");
    assert_eq!(fold_total(&a), sim_ns, "fold total must equal elapsed sim time");
}

/// `--svg-ready` renders a self-contained SVG document.
#[test]
fn cli_svg_ready_renders_svg() {
    let svg = inspect(&["flamegraph", "--svg-ready", "--demo"]);
    assert!(svg.starts_with("<svg "), "not an SVG: {}", &svg[..svg.len().min(80)]);
    assert!(svg.trim_end().ends_with("</svg>"));
    assert!(svg.contains("disk_req/service"), "leaves must be labeled");
}

/// `timeline` flags spans whose open time precedes the retained ring
/// window (or whose close event was evicted) as `truncated`, and every
/// record carries the key.
#[test]
fn cli_timeline_flags_truncated_spans() {
    let out = inspect(&["timeline", "--last", "8", "--demo"]);
    let mut saw_truncated = false;
    for line in out.lines() {
        let j = parse(line).expect("timeline jsonl");
        match j.get("truncated") {
            Some(Json::Bool(t)) => saw_truncated |= t,
            other => panic!("missing truncated flag: {other:?} in {line}"),
        }
    }
    assert!(saw_truncated, "an 8-event window over the demo walk must truncate:\n{out}");
}

/// Every phase row's `time_attribution` partitions its total and the
/// percentages sum to 100 ± rounding, on a real small-file run.
#[test]
fn phase_attribution_partitions_and_sums_to_100() {
    let mut fs = cffs::build::on_disk(models::tiny_test_disk(), CffsConfig::cffs());
    let params =
        SmallFileParams { nfiles: 60, file_size: 1024, ndirs: 3, ..SmallFileParams::small() };
    let rows = smallfile::run(&mut fs, params).expect("run");
    assert!(!rows.is_empty());
    for row in &rows {
        let j = row.to_json();
        let attr = j.get("time_attribution").expect("time_attribution");
        let get = |k: &str| attr.get(k).and_then(Json::as_u64).expect("u64 field");
        let total = get("total_ns");
        assert!(total > 0, "{}: measured phase must have a window", row.phase);
        assert_eq!(
            get("op_ns") + get("queue_ns") + get("service_ns") + get("idle_ns"),
            total,
            "{}: buckets must partition total_ns",
            row.phase
        );
        let pct: f64 = ["op_pct", "queue_pct", "service_pct", "idle_pct"]
            .iter()
            .map(|k| attr.get(k).and_then(Json::as_f64).expect("pct"))
            .sum();
        assert!((pct - 100.0).abs() <= 0.1, "{}: pcts sum to {pct}", row.phase);
    }
}

/// The full policy loop: adversarial aging decays `group_fetch_util_ewma`
/// under live traffic, the autotrigger fires budgeted IdleOnly passes on
/// the floor crossing (no explicit regroup call anywhere), and the end
/// state reads back at >= 0.90 of the fresh layout's group-fetch
/// utilization.
#[test]
fn autotrigger_fires_on_util_decay_and_recovers() {
    let adv = AdversarialParams { rounds: 2, storm_files: 60, ndirs: 4, seed: 42 };
    let populate = |fs: &mut Cffs| {
        let root = fs.root();
        for d in 0..adv.ndirs {
            let dir = fs.mkdir(root, &format!("adv{d:03}")).unwrap();
            for f in 0..10 {
                let ino = fs.create(dir, &format!("base{f:03}")).unwrap();
                fs.write(ino, 0, &vec![(d * 16 + f) as u8; 1024]).unwrap();
            }
        }
        fs.sync().unwrap();
    };
    // Read every base file one directory at a time, cold, and return the
    // measured window's mean group-fetch utilization.
    fn cold_util(fs: &mut Cffs, phase: &str) -> u64 {
        fs.drop_caches().unwrap();
        let dirs: Vec<_> = {
            let root = fs.root();
            let mut d: Vec<_> = fs
                .readdir(root)
                .unwrap()
                .into_iter()
                .filter(|e| e.kind == FileKind::Dir)
                .map(|e| (e.name.clone(), e.ino))
                .collect();
            d.sort();
            d
        };
        let row = measure(fs, phase, 0, 0, |fs| {
            for (_, dino) in &dirs {
                for e in fs.readdir(*dino)? {
                    if e.kind == FileKind::File {
                        // Read the whole file: unconsumed tail blocks of a
                        // group fetch are charged as waste, so a 1-byte
                        // read would misreport multi-block files.
                        let sz = fs.getattr(e.ino)?.size as usize;
                        let mut b = vec![0u8; sz];
                        fs.read(e.ino, 0, &mut b)?;
                    }
                }
                fs.drop_caches()?;
            }
            Ok(())
        })
        .expect("measure");
        row.counters
            .as_ref()
            .and_then(|c| c.histogram("group_fetch_util_pct"))
            .map(|h| h.mean())
            .unwrap_or(0)
    }

    let mut fresh = cffs::build::on_disk(
        models::tiny_test_disk(),
        CffsConfig::cffs().with_mode(MetadataMode::Delayed),
    );
    populate(&mut fresh);
    let fresh_util = cold_util(&mut fresh, "fresh");
    assert!(fresh_util >= 90, "fresh layout should group near-perfectly, got {fresh_util}%");

    let mut fs = cffs::build::on_disk(
        models::tiny_test_disk(),
        CffsConfig::cffs().with_mode(MetadataMode::Delayed),
    );
    populate(&mut fs);
    age_adversarial(&mut fs, adv, |_, _| Ok(())).expect("aging");
    fs.sync().unwrap();
    let aged_util = cold_util(&mut fs, "aged");
    assert!(aged_util < fresh_util, "aging must erode utilization");

    // Live traffic with idle moments: only the signal may start a pass.
    // The trigger runs after each directory's reads, while that
    // directory's blocks are still resident (IdleOnly relocates only
    // resident blocks), and the cache drop afterwards resolves the group
    // fetches so the EWMA keeps sampling.
    let cfg = AutotriggerConfig::default();
    let mut fires = 0u64;
    for _ in 0..6 {
        let dirs: Vec<_> = {
            let root = fs.root();
            let mut d: Vec<_> = fs
                .readdir(root)
                .unwrap()
                .into_iter()
                .filter(|e| e.kind == FileKind::Dir)
                .map(|e| e.ino)
                .collect();
            d.sort();
            d
        };
        fs.drop_caches().unwrap();
        for dino in dirs {
            for e in fs.readdir(dino).unwrap() {
                if e.kind == FileKind::File {
                    let sz = fs.getattr(e.ino).unwrap().size as usize;
                    let mut b = vec![0u8; sz];
                    fs.read(e.ino, 0, &mut b).unwrap();
                }
            }
            if cffs_regroup::autotrigger(&mut fs, &cfg).expect("autotrigger").is_some() {
                fires += 1;
            }
            fs.drop_caches().unwrap();
        }
    }
    assert!(fires > 0, "the utilization floor must have fired the trigger");
    assert_eq!(Cffs::obs(&fs).get(Ctr::RegroupAutotriggers), fires);

    let recovered = cold_util(&mut fs, "recovered");
    let ratio = recovered as f64 / fresh_util.max(1) as f64;
    assert!(
        ratio >= 0.90,
        "signal-driven recovery too weak: {recovered}% vs fresh {fresh_util}% ({ratio:.2}x)"
    );
}

//! Crash safety of the online regrouping engine.
//!
//! A relocation is two steps — copy-forward (data written and flushed to
//! the new block, pointer untouched) then commit (pointer durably
//! rewritten, old block freed). The safety claim (ISSUE 4): a crash at
//! *any* tear point of the protocol leaves the file system fsck-clean
//! with byte-identical logical contents. This suite drives the protocol
//! step by step over a deliberately fragmented image and, after every
//! step, sweeps the whole-crash image plus every torn variant of the most
//! recent sector write through fsck, remount, and a full-tree byte
//! comparison.

use cffs::core::{fsck, Cffs, CffsConfig, MkfsParams};
use cffs::prelude::*;
use cffs_disksim::models;
use cffs_disksim::Disk;
use cffs_fslib::BLOCK_SIZE;
use cffs_workloads::trace::{snapshot, Snapshot};

fn fresh(cfg: CffsConfig) -> Cffs {
    cffs::core::mkfs::mkfs(Disk::new(models::tiny_test_disk()), MkfsParams::tiny(), cfg)
        .expect("mkfs")
}

/// A deterministic fragmented tree: directory `a` holds files thinned by
/// deletion, files renamed in from `b` (whose blocks sit as strays in
/// `b`-owned extents — the allocator never moves data on rename), and one
/// 14-block file whose tail pointers live in the indirect block (so
/// commits exercise the indirect flush path, not just embedded-inode
/// sectors).
fn fragmented(cfg: CffsConfig) -> Cffs {
    let fs = fresh(cfg);
    let root = fs.root();
    let da = fs.mkdir(root, "a").unwrap();
    let db = fs.mkdir(root, "b").unwrap();
    for i in 0..10 {
        for (tag, dir) in [(b'a', da), (b'b', db)] {
            let ino = fs.create(dir, &format!("f{i}")).unwrap();
            fs.write(ino, 0, &vec![tag ^ i as u8; 2500]).unwrap();
        }
    }
    // Thin both directories so surviving files sit in holey extents.
    for i in [0, 2, 4, 6, 8] {
        fs.unlink(da, &format!("f{i}")).unwrap();
        fs.unlink(db, &format!("f{i}")).unwrap();
    }
    // Cross-directory renames: the data blocks stay put in `b`'s extents,
    // so for `a` they are strays the planner must relocate.
    for i in [1, 3, 5, 7, 9] {
        fs.rename(db, &format!("f{i}"), da, &format!("g{i}")).unwrap();
    }
    // A small-but-indirect file: 14 blocks > NDIRECT, <= group_blocks.
    let big = fs.create(da, "indirect").unwrap();
    fs.write(big, 0, &vec![0x5A; 14 * BLOCK_SIZE]).unwrap();
    fs.sync().unwrap();
    fs
}

/// Crash here — whole image and every torn variant of the last write —
/// and require: repair converges, verify is clean, the remounted tree is
/// byte-identical to `want`.
fn crash_everywhere_and_verify(fs: &Cffs, want: &Snapshot, context: &str) {
    let mut images: Vec<(String, Disk)> = vec![(format!("{context}, whole"), fs.crash_image())];
    for keep in 0..=8 {
        if let Some(img) = fs.crash_image_torn(keep) {
            images.push((format!("{context}, tear at {keep}"), img));
        }
    }
    for (ctx, mut img) in images {
        fsck::fsck(&mut img, true).unwrap_or_else(|e| panic!("{ctx}: repair diverged: {e}"));
        let verify = fsck::fsck(&mut img, false).expect("verify");
        assert!(verify.clean(), "{ctx}: still dirty: {:?}", verify.errors);
        let mut fs2 = Cffs::mount(img, CffsConfig::cffs()).expect("mount repaired");
        let got = snapshot(&mut fs2).expect("snapshot");
        assert_eq!(&got, want, "{ctx}: logical contents changed");
    }
}

/// Drive every planned relocation through the two-step protocol, crashing
/// after each step, in both metadata modes.
#[test]
fn crash_at_every_tear_point_of_every_relocation() {
    for cfg in [CffsConfig::cffs(), CffsConfig::cffs().with_mode(MetadataMode::Delayed)] {
        let label = cfg.label.clone();
        let mut fs = fragmented(cfg);
        let want = snapshot(&mut fs).expect("snapshot");
        fs.sync().unwrap();
        let plan = cffs::regroup::plan(&mut fs, &cffs::regroup::RegroupConfig::exhaustive())
            .expect("plan");
        assert!(!plan.dirs.is_empty(), "{label}: setup must fragment something");
        for dp in &plan.dirs {
            let mut key = None;
            for (n, mv) in dp.moves.iter().enumerate() {
                let slot = loop {
                    match key.and_then(|k| fs.group_claim_slot(k)) {
                        Some(to) => break to,
                        None => {
                            key = Some(
                                fs.carve_group_for(dp.dir)
                                    .expect("carve")
                                    .expect("tiny image has room"),
                            );
                        }
                    }
                };
                // Step 1: data copied forward and durable; pointer untouched.
                fs.relocate_copy_forward(mv.ino, mv.lbn, slot).expect("copy forward");
                crash_everywhere_and_verify(
                    &fs,
                    &want,
                    &format!("{label}, dir {:#x} move {n} after copy-forward", dp.dir),
                );
                // Step 2: pointer durably rewritten, old block freed.
                fs.relocate_commit(mv.ino, mv.lbn, slot).expect("commit");
                crash_everywhere_and_verify(
                    &fs,
                    &want,
                    &format!("{label}, dir {:#x} move {n} after commit", dp.dir),
                );
            }
        }
        // The finished pass: durable, clean, unchanged, and nothing left
        // for a second pass to do.
        fs.sync().unwrap();
        crash_everywhere_and_verify(&fs, &want, &format!("{label}, after full pass"));
        let again = cffs::regroup::plan(&mut fs, &cffs::regroup::RegroupConfig::exhaustive())
            .expect("replan");
        assert_eq!(again.total_blocks(), 0, "{label}: regrouped image must score clean");
        let mut img = fs.unmount().expect("unmount");
        let report = fsck::fsck(&mut img, false).expect("final fsck");
        assert!(report.clean(), "{label}: {:?}", report.errors);
        let mut fs2 = Cffs::mount(img, CffsConfig::cffs()).expect("remount");
        assert_eq!(snapshot(&mut fs2).expect("snapshot"), want, "{label}: remount");
    }
}

/// The flight recorder under the torn-crash sweep: with a recorder
/// armed on the live stack, every tear point of a relocation yields a
/// dump that parses, validates against the flight schema, and whose
/// last frame reproduces the live registry's counters exactly — the
/// black box a real crashed run would leave behind agrees with the
/// state fsck then reconstructs.
#[test]
fn flight_dump_is_valid_at_every_tear_point() {
    use cffs_obs::feed::FRAME_COUNTERS;
    use cffs_obs::json::Json;

    let dir = std::env::temp_dir().join(format!("cffs-crash-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut fs = fragmented(CffsConfig::cffs());
    let want = snapshot(&mut fs).expect("snapshot");
    fs.sync().unwrap();
    let obs = fs.obs();
    // Armed directly (not via the process-global `--flight` path) so
    // parallel tests in this binary share no global state.
    let guard = cffs_obs::flight::arm(&dir, &obs, &[], "regroup-crash");
    let plan =
        cffs::regroup::plan(&mut fs, &cffs::regroup::RegroupConfig::exhaustive()).expect("plan");
    let dp = &plan.dirs[0];
    let mv = &dp.moves[0];
    let key = fs.carve_group_for(dp.dir).expect("carve").expect("room");
    let slot = fs.group_claim_slot(key).expect("slot");
    fs.relocate_copy_forward(mv.ino, mv.lbn, slot).expect("copy forward");
    let mut images: Vec<(String, Disk)> = vec![("whole".to_string(), fs.crash_image())];
    for keep in 0..=8 {
        if let Some(img) = fs.crash_image_torn(keep) {
            images.push((format!("tear-{keep}"), img));
        }
    }
    for (ctx, mut img) in images {
        // Repair the torn image; a dirty verdict inside also flushes the
        // recorder with reason "fsck_failure" via the registry hook.
        fsck::fsck(&mut img, true).unwrap_or_else(|e| panic!("{ctx}: repair diverged: {e}"));
        // Dump at this tear point and require the black box to be
        // internally exact, not merely parseable.
        guard.flight().dump(&ctx);
        let text = std::fs::read_to_string(guard.flight().path()).expect("read dump");
        let dump = cffs_obs::flight::parse_flight(&text)
            .unwrap_or_else(|e| panic!("{ctx}: invalid flight dump: {e}"));
        // Our explicit dump is normally the last word, but the sibling
        // tests in this binary also fsck dirty images, and each unclean
        // verdict re-flushes every recorder in the process registry —
        // either reason proves the dump is current, and the counter
        // assertions below hold for both (this obs is quiescent here).
        let reason = dump.head.get("reason").and_then(Json::as_str).unwrap_or("");
        assert!(
            reason == ctx || reason == "fsck_failure",
            "{ctx}: dump is stale (reason {reason:?})"
        );
        let last = dump.frames.last().expect("frames");
        for &c in FRAME_COUNTERS {
            let dumped = last
                .get("counters")
                .and_then(|m| m.get(c.name()))
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("{ctx}: frame lacks {}", c.name()));
            assert_eq!(dumped, obs.get(c), "{ctx}: counter {} diverged", c.name());
        }
        let report = cffs_obs::flight::postmortem(&dump);
        assert_eq!(
            report.get("consistent"),
            Some(&Json::Bool(true)),
            "{ctx}: last frame disagrees with counters_final"
        );
        // The repaired image still reconstructs to the wanted tree.
        let verify = fsck::fsck(&mut img, false).expect("verify");
        assert!(verify.clean(), "{ctx}: still dirty: {:?}", verify.errors);
        let mut fs2 = Cffs::mount(img, CffsConfig::cffs()).expect("mount repaired");
        assert_eq!(&snapshot(&mut fs2).expect("snapshot"), &want, "{ctx}: contents changed");
    }
    drop(guard);
    std::fs::remove_dir_all(&dir).ok();
}

/// An aborted re-formation must not leak: carve an empty extent, claim a
/// slot, copy data forward — then crash before the commit. The repaired
/// image has identical contents and no trace of the abandoned extent
/// survives a later pass.
#[test]
fn aborted_reformation_leaks_nothing() {
    let mut fs = fragmented(CffsConfig::cffs());
    let want = snapshot(&mut fs).expect("snapshot");
    fs.sync().unwrap();
    let plan =
        cffs::regroup::plan(&mut fs, &cffs::regroup::RegroupConfig::exhaustive()).expect("plan");
    let dp = &plan.dirs[0];
    let mv = &dp.moves[0];
    let key = fs.carve_group_for(dp.dir).expect("carve").expect("room");
    let slot = fs.group_claim_slot(key).expect("slot");
    fs.relocate_copy_forward(mv.ino, mv.lbn, slot).expect("copy forward");
    // Crash with the claimed, half-populated extent never committed.
    let mut img = fs.crash_image();
    fsck::fsck(&mut img, true).expect("repair");
    assert!(fsck::fsck(&mut img, false).expect("verify").clean());
    let mut fs2 = Cffs::mount(img, CffsConfig::cffs()).expect("mount");
    assert_eq!(snapshot(&mut fs2).expect("snapshot"), want);
    // The abandoned extent is gone or reclaimable: a full pass on the
    // repaired image still converges to a clean score.
    let out = cffs::regroup::run(&mut fs2, &cffs::regroup::RegroupConfig::exhaustive())
        .expect("regroup");
    assert_eq!(out.carve_failures, 0, "leaked extents would exhaust contiguous space");
    let again =
        cffs::regroup::plan(&mut fs2, &cffs::regroup::RegroupConfig::exhaustive()).expect("replan");
    assert_eq!(again.total_blocks(), 0);
    assert_eq!(snapshot(&mut fs2).expect("snapshot"), want);
}

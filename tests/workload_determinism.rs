//! Byte-stable timelines for the seeded workloads.
//!
//! Every workload payload is a pure function of `(seed, serial)`, so two
//! runs with equal parameters must agree on the *entire* simulated
//! timeline to the nanosecond — same bytes, same block layout, same disk
//! requests. These regression tests pin that property for PostMark, the
//! software-development suite, and the adversarial aging workload on a
//! real C-FFS instance (the oracle-level determinism is covered by each
//! workload's unit tests), and check that changing the seed actually
//! changes the stream.

use cffs::build;
use cffs::core::CffsConfig;
use cffs_disksim::models;
use cffs_workloads::aging::{age_adversarial, AdversarialParams};
use cffs_workloads::appdev::{self, DevTreeParams};
use cffs_workloads::postmark::{self, PostmarkParams};

fn tiny_cffs() -> cffs::core::Cffs {
    build::on_disk(models::tiny_test_disk(), CffsConfig::cffs())
}

#[test]
fn postmark_timeline_is_byte_stable() {
    let run = |seed: u64| {
        let mut fs = tiny_cffs();
        postmark::run(&mut fs, PostmarkParams { seed, ..PostmarkParams::small() })
            .expect("postmark");
        fs.sync().expect("sync");
        fs.now().as_nanos()
    };
    assert_eq!(run(7), run(7), "equal seeds must replay the same timeline");
    assert_ne!(run(7), run(8), "the seed must actually steer the stream");
}

#[test]
fn appdev_timeline_is_byte_stable() {
    let run = |seed: u64| {
        let mut fs = tiny_cffs();
        appdev::run(&mut fs, DevTreeParams { seed, ..DevTreeParams::small() }).expect("appdev");
        fs.sync().expect("sync");
        fs.now().as_nanos()
    };
    assert_eq!(run(3), run(3), "equal seeds must replay the same timeline");
    assert_ne!(run(3), run(4), "the seed must actually steer the stream");
}

#[test]
fn adversarial_aging_timeline_is_byte_stable() {
    let params = AdversarialParams { rounds: 2, storm_files: 40, ndirs: 4, seed: 5 };
    let run = |params: AdversarialParams| {
        let mut fs = tiny_cffs();
        age_adversarial(&mut fs, params, |_, _| Ok(())).expect("aging");
        fs.sync().expect("sync");
        fs.now().as_nanos()
    };
    assert_eq!(run(params), run(params));
    assert_ne!(run(params), run(AdversarialParams { seed: 6, ..params }));
}

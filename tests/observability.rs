//! Cross-layer observability, verified against hand-counted workloads.
//!
//! The counters are only worth having if they mean what they say. These
//! tests pin the exact counter deltas of a micro-workload small enough to
//! count on paper, check monotonicity through a real workload, and wrap
//! the trace ring through the live stack.

use cffs::core::{Cffs, CffsConfig, MkfsParams};
use cffs_disksim::models;
use cffs_disksim::Disk;
use cffs_obs::json::ToJson;
use cffs_obs::{StatsSnapshot, DEFAULT_TRACE_CAPACITY};
use cffs_workloads::smallfile::{self, SmallFileParams};

fn fresh(cfg: CffsConfig) -> Cffs {
    cffs::core::mkfs::mkfs(Disk::new(models::tiny_test_disk()), MkfsParams::tiny(), cfg)
        .expect("mkfs")
}

/// Write one 1 KB file, go cold, and read it back, returning the counter
/// delta of just the read.
fn cold_read_delta(cfg: CffsConfig) -> StatsSnapshot {
    let fs = fresh(cfg);
    let root = fs.root();
    let d = fs.mkdir(root, "d").unwrap();
    let f = fs.create(d, "small").unwrap();
    fs.write(f, 0, &vec![7u8; 1024]).unwrap();
    fs.sync().unwrap();
    fs.drop_caches().unwrap();
    let obs = Cffs::obs(&fs);
    let before = obs.snapshot("cold-read", fs.now().as_nanos());
    let mut buf = vec![0u8; 1024];
    assert_eq!(fs.read(f, 0, &mut buf).unwrap(), 1024);
    assert!(buf.iter().all(|&b| b == 7));
    obs.snapshot("cold-read", fs.now().as_nanos()).delta(&before)
}

/// The paper's headline, hand-counted: under full C-FFS a cold small-file
/// read costs exactly ONE disk request — the group fetch brings the
/// directory block (with the embedded inode) and the file data together.
#[test]
fn cold_small_file_read_is_one_disk_request() {
    let d = cold_read_delta(CffsConfig::cffs());
    assert_eq!(d.get_named("disk_requests"), 1);
    assert_eq!(d.get_named("disk_reads"), 1);
    assert_eq!(d.get_named("fs_group_fetches"), 1);
    assert_eq!(d.get_named("cache_group_reads"), 1);
    assert_eq!(d.get_named("fs_embedded_inode_ops"), 1);
    assert_eq!(d.get_named("cache_misses"), 0, "the group fetch preempts every miss");
}

/// The same read on the conventional layout: the external inode block and
/// the data block are separate requests.
#[test]
fn cold_small_file_read_conventional_needs_two_requests() {
    let d = cold_read_delta(CffsConfig::conventional());
    assert_eq!(d.get_named("disk_requests"), 2);
    assert_eq!(d.get_named("fs_group_fetches"), 0);
    assert_eq!(d.get_named("fs_embedded_inode_ops"), 0);
    assert_eq!(d.get_named("cache_misses"), 2);
}

/// Counters never decrease across a real workload, and a later snapshot
/// dominates an earlier one counter-by-counter.
#[test]
fn snapshots_are_monotonic_through_a_workload() {
    let fs = fresh(CffsConfig::cffs());
    let root = fs.root();
    let obs = Cffs::obs(&fs);
    let mut prev = obs.snapshot("t0", fs.now().as_nanos());
    for round in 0..4 {
        let d = fs.mkdir(root, &format!("r{round}")).unwrap();
        for i in 0..10 {
            let f = fs.create(d, &format!("f{i}")).unwrap();
            fs.write(f, 0, &vec![round as u8; 900]).unwrap();
        }
        fs.sync().unwrap();
        let snap = obs.snapshot(&format!("t{}", round + 1), fs.now().as_nanos());
        assert!(snap.sim_ns >= prev.sim_ns);
        for (name, v) in &snap.counters {
            let was = prev.get_named(name);
            assert!(*v >= was, "counter {name} went backwards: {was} -> {v}");
        }
        // The delta is exactly the difference (spot-check one counter).
        let delta = snap.delta(&prev);
        assert_eq!(
            delta.get_named("disk_requests"),
            snap.get_named("disk_requests") - prev.get_named("disk_requests")
        );
        prev = snap;
    }
}

/// Drive enough real I/O through the stack to wrap the 4096-event trace
/// ring; the newest events must survive, in time order.
#[test]
fn trace_ring_wraps_through_live_stack_keeping_newest() {
    let fs = fresh(CffsConfig::cffs()); // sync metadata: many small writes
    let root = fs.root();
    let obs = Cffs::obs(&fs);
    let mut rounds = 0u32;
    while obs.events_recorded() <= DEFAULT_TRACE_CAPACITY as u64 {
        let name = format!("churn{rounds}");
        let f = fs.create(root, &name).unwrap();
        fs.write(f, 0, &vec![1u8; 600]).unwrap();
        fs.sync().unwrap();
        fs.unlink(root, &name).unwrap();
        fs.drop_caches().unwrap();
        rounds += 1;
        assert!(rounds < 10_000, "workload never filled the trace ring");
    }
    assert!(obs.events_recorded() > DEFAULT_TRACE_CAPACITY as u64);
    // Retention is capped at capacity — the oldest events are gone...
    let all = obs.recent_events(usize::MAX);
    assert_eq!(all.len(), DEFAULT_TRACE_CAPACITY);
    // ...and what's retained is the newest tail, oldest first. Events are
    // recorded at completion (`op.*` span events carry their *open* time
    // in t_ns), so emission order is monotonic in t_ns + dur_ns.
    assert!(
        all.windows(2).all(|w| w[0].t_ns + w[0].dur_ns <= w[1].t_ns + w[1].dur_ns),
        "events out of order"
    );
    let newest = all.last().unwrap().t_ns;
    assert!(obs.recent_events(1)[0].t_ns == newest, "newest event lost");
    assert!(newest <= fs.now().as_nanos());
}

/// Causal attribution, end to end: the single disk request of a cold
/// small-file read under full C-FFS carries the span id of the `read` op
/// that caused it — the trace ring links effect back to cause.
#[test]
fn cold_read_disk_request_links_back_to_its_read_span() {
    let fs = fresh(CffsConfig::cffs());
    let root = fs.root();
    let d = fs.mkdir(root, "d").unwrap();
    let f = fs.create(d, "small").unwrap();
    fs.write(f, 0, &vec![7u8; 1024]).unwrap();
    fs.sync().unwrap();
    fs.drop_caches().unwrap();
    let obs = Cffs::obs(&fs);
    let before = obs.events_recorded();
    let mut buf = vec![0u8; 1024];
    assert_eq!(fs.read(f, 0, &mut buf).unwrap(), 1024);
    let new = (obs.events_recorded() - before) as usize;
    let events = obs.recent_events(new);

    let span_events: Vec<_> = events.iter().filter(|e| e.tag == "op.read").collect();
    assert_eq!(span_events.len(), 1, "exactly one read span closed");
    let span = span_events[0].span;
    assert_ne!(span, 0, "the span event carries its own id");
    assert!(span_events[0].dur_ns > 0, "a cold read takes simulated time");

    let disk_events: Vec<_> =
        events.iter().filter(|e| e.tag.starts_with("disk.")).collect();
    assert_eq!(disk_events.len(), 1, "cold C-FFS read = one disk request");
    assert_eq!(disk_events[0].span, span, "disk request attributed to the read span");
    assert_eq!(disk_events[0].op, "read", "disk request stamped with the op kind");
    assert!(disk_events[0].dur_ns > 0, "mechanical request has service time");
    // Cause precedes effect-completion bookkeeping: the request was issued
    // inside the span's window.
    assert!(disk_events[0].t_ns >= span_events[0].t_ns);
    assert!(disk_events[0].t_ns <= span_events[0].t_ns + span_events[0].dur_ns);
}

/// Group-fetch utilization accounting closes: reading every small file of
/// a directory makes most speculatively fetched blocks useful, and each
/// fetched block ends up counted exactly once as used or wasted.
#[test]
fn group_fetch_utilization_accounts_every_fetched_block() {
    let fs = fresh(CffsConfig::cffs());
    let root = fs.root();
    let d = fs.mkdir(root, "d").unwrap();
    let n = 8usize;
    for i in 0..n {
        let f = fs.create(d, &format!("f{i}")).unwrap();
        fs.write(f, 0, &vec![i as u8; 1024]).unwrap();
    }
    fs.sync().unwrap();
    fs.drop_caches().unwrap();
    let obs = Cffs::obs(&fs);
    let before = obs.snapshot("gf", fs.now().as_nanos());
    let mut buf = vec![0u8; 1024];
    for i in 0..n {
        let f = fs.lookup(d, &format!("f{i}")).unwrap();
        assert_eq!(fs.read(f, 0, &mut buf).unwrap(), 1024);
        assert!(buf.iter().all(|&b| b == i as u8));
    }
    // Settle: dropping the caches resolves every still-untouched fetched
    // block as wasted, so the accounting identity must close exactly.
    fs.drop_caches().unwrap();
    let delta = obs.snapshot("gf", fs.now().as_nanos()).delta(&before);

    let used = delta.get_named("group_fetch_blocks_used");
    let wasted = delta.get_named("group_fetch_blocks_wasted");
    let fetched = delta.get_named("cache_group_read_blocks");
    assert!(fetched > 0, "the directory read exercised group fetching");
    assert!(used > 0, "reading the whole directory makes fetched blocks useful");
    assert_eq!(used + wasted, fetched, "every fetched block is used xor wasted");

    let h = delta.histogram("group_fetch_util_pct").expect("utilization histogram");
    assert!(h.count() > 0, "each retired fetch records a utilization sample");
    // Samples are percentages; the log2-bucket p100 reports its bucket's
    // upper bound, so check the exact mean instead.
    assert!(h.mean() <= 100, "utilization is a percentage");
}

/// Every phase row that reaches a `BENCH_*.json` carries per-op-kind
/// latency percentiles (`PhaseResult::to_json` is the single emission
/// path the repro binaries share).
#[test]
fn phase_rows_carry_per_op_latency_percentiles() {
    let mut fs = cffs::build::on_disk(models::seagate_st31200(), CffsConfig::cffs());
    let params = SmallFileParams { nfiles: 60, ndirs: 3, ..SmallFileParams::default() };
    let rows = smallfile::run(&mut fs, params).unwrap();
    assert_eq!(rows.len(), 4);
    for (row, op) in rows.iter().zip(["create", "read", "write", "unlink"]) {
        let j = row.to_json();
        let lat = j.get("latency_ns").expect("phase row has latency_ns");
        let per_op = lat.get(op).unwrap_or_else(|| panic!("{} phase ran {op} ops", row.phase));
        for field in ["count", "mean_ns", "p50_ns", "p90_ns", "p99_ns"] {
            let v = per_op.get(field).and_then(|v| v.as_u64());
            assert!(v.is_some(), "latency_ns.{op}.{field} missing in {} row", row.phase);
        }
        assert!(per_op.get("count").unwrap().as_u64().unwrap() >= 60);
    }
}

/// Determinism regression (what makes `cffs-inspect timeline` byte-stable):
/// two runs of the same fixed-seed workload on fresh identical stacks
/// produce byte-identical trace timelines.
#[test]
fn identical_seeded_runs_produce_byte_identical_timelines() {
    let run = || {
        let mut fs = fresh(CffsConfig::cffs());
        let params = SmallFileParams { nfiles: 40, ndirs: 2, ..SmallFileParams::default() };
        smallfile::run(&mut fs, params).unwrap();
        let obs = Cffs::obs(&fs);
        obs.recent_events(usize::MAX)
            .iter()
            .map(|e| e.to_jsonl())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "fixed-seed timelines must be byte-identical");
}

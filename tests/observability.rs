//! Cross-layer observability, verified against hand-counted workloads.
//!
//! The counters are only worth having if they mean what they say. These
//! tests pin the exact counter deltas of a micro-workload small enough to
//! count on paper, check monotonicity through a real workload, and wrap
//! the trace ring through the live stack.

use cffs::core::{Cffs, CffsConfig, MkfsParams};
use cffs::prelude::*;
use cffs_disksim::models;
use cffs_disksim::Disk;
use cffs_obs::{StatsSnapshot, DEFAULT_TRACE_CAPACITY};

fn fresh(cfg: CffsConfig) -> Cffs {
    cffs::core::mkfs::mkfs(Disk::new(models::tiny_test_disk()), MkfsParams::tiny(), cfg)
        .expect("mkfs")
}

/// Write one 1 KB file, go cold, and read it back, returning the counter
/// delta of just the read.
fn cold_read_delta(cfg: CffsConfig) -> StatsSnapshot {
    let mut fs = fresh(cfg);
    let root = fs.root();
    let d = fs.mkdir(root, "d").unwrap();
    let f = fs.create(d, "small").unwrap();
    fs.write(f, 0, &vec![7u8; 1024]).unwrap();
    fs.sync().unwrap();
    fs.drop_caches().unwrap();
    let obs = Cffs::obs(&fs);
    let before = obs.snapshot("cold-read", fs.now().as_nanos());
    let mut buf = vec![0u8; 1024];
    assert_eq!(fs.read(f, 0, &mut buf).unwrap(), 1024);
    assert!(buf.iter().all(|&b| b == 7));
    obs.snapshot("cold-read", fs.now().as_nanos()).delta(&before)
}

/// The paper's headline, hand-counted: under full C-FFS a cold small-file
/// read costs exactly ONE disk request — the group fetch brings the
/// directory block (with the embedded inode) and the file data together.
#[test]
fn cold_small_file_read_is_one_disk_request() {
    let d = cold_read_delta(CffsConfig::cffs());
    assert_eq!(d.get_named("disk_requests"), 1);
    assert_eq!(d.get_named("disk_reads"), 1);
    assert_eq!(d.get_named("fs_group_fetches"), 1);
    assert_eq!(d.get_named("cache_group_reads"), 1);
    assert_eq!(d.get_named("fs_embedded_inode_ops"), 1);
    assert_eq!(d.get_named("cache_misses"), 0, "the group fetch preempts every miss");
}

/// The same read on the conventional layout: the external inode block and
/// the data block are separate requests.
#[test]
fn cold_small_file_read_conventional_needs_two_requests() {
    let d = cold_read_delta(CffsConfig::conventional());
    assert_eq!(d.get_named("disk_requests"), 2);
    assert_eq!(d.get_named("fs_group_fetches"), 0);
    assert_eq!(d.get_named("fs_embedded_inode_ops"), 0);
    assert_eq!(d.get_named("cache_misses"), 2);
}

/// Counters never decrease across a real workload, and a later snapshot
/// dominates an earlier one counter-by-counter.
#[test]
fn snapshots_are_monotonic_through_a_workload() {
    let mut fs = fresh(CffsConfig::cffs());
    let root = fs.root();
    let obs = Cffs::obs(&fs);
    let mut prev = obs.snapshot("t0", fs.now().as_nanos());
    for round in 0..4 {
        let d = fs.mkdir(root, &format!("r{round}")).unwrap();
        for i in 0..10 {
            let f = fs.create(d, &format!("f{i}")).unwrap();
            fs.write(f, 0, &vec![round as u8; 900]).unwrap();
        }
        fs.sync().unwrap();
        let snap = obs.snapshot(&format!("t{}", round + 1), fs.now().as_nanos());
        assert!(snap.sim_ns >= prev.sim_ns);
        for (name, v) in &snap.counters {
            let was = prev.get_named(name);
            assert!(*v >= was, "counter {name} went backwards: {was} -> {v}");
        }
        // The delta is exactly the difference (spot-check one counter).
        let delta = snap.delta(&prev);
        assert_eq!(
            delta.get_named("disk_requests"),
            snap.get_named("disk_requests") - prev.get_named("disk_requests")
        );
        prev = snap;
    }
}

/// Drive enough real I/O through the stack to wrap the 4096-event trace
/// ring; the newest events must survive, in time order.
#[test]
fn trace_ring_wraps_through_live_stack_keeping_newest() {
    let mut fs = fresh(CffsConfig::cffs()); // sync metadata: many small writes
    let root = fs.root();
    let obs = Cffs::obs(&fs);
    let mut rounds = 0u32;
    while obs.events_recorded() <= DEFAULT_TRACE_CAPACITY as u64 {
        let name = format!("churn{rounds}");
        let f = fs.create(root, &name).unwrap();
        fs.write(f, 0, &vec![1u8; 600]).unwrap();
        fs.sync().unwrap();
        fs.unlink(root, &name).unwrap();
        fs.drop_caches().unwrap();
        rounds += 1;
        assert!(rounds < 10_000, "workload never filled the trace ring");
    }
    assert!(obs.events_recorded() > DEFAULT_TRACE_CAPACITY as u64);
    // Retention is capped at capacity — the oldest events are gone...
    let all = obs.recent_events(usize::MAX);
    assert_eq!(all.len(), DEFAULT_TRACE_CAPACITY);
    // ...and what's retained is the newest tail, oldest first.
    assert!(all.windows(2).all(|w| w[0].t_ns <= w[1].t_ns), "events out of order");
    let newest = all.last().unwrap().t_ns;
    assert!(obs.recent_events(1)[0].t_ns == newest, "newest event lost");
    assert!(newest <= fs.now().as_nanos());
}

//! Cross-implementation equivalence: every file system must produce the
//! same logical state as the in-memory oracle for the same operation
//! trace. This is the strongest correctness check in the suite — it is
//! blind to layout, so embedded inodes, grouping, renumbering and
//! degrouping all have to preserve semantics exactly.

use cffs::build;
use cffs::prelude::*;
use cffs_disksim::models;
use cffs_fslib::model::ModelFs;
use cffs_workloads::trace::{random_trace, replay, snapshot, Op};

fn all_test_filesystems() -> Vec<Box<dyn FileSystem>> {
    let mut v: Vec<Box<dyn FileSystem>> = Vec::new();
    v.push(Box::new(cffs::ffs::mkfs::mkfs(
        cffs_disksim::Disk::new(models::tiny_test_disk()),
        cffs::ffs::MkfsParams::tiny(),
        cffs::ffs::FfsOptions::default(),
    )
    .expect("ffs mkfs")));
    for cfg in [
        cffs::core::CffsConfig::conventional(),
        cffs::core::CffsConfig::embedded_only(),
        cffs::core::CffsConfig::grouping_only(),
        cffs::core::CffsConfig::cffs(),
    ] {
        v.push(Box::new(
            cffs::core::mkfs::mkfs(
                cffs_disksim::Disk::new(models::tiny_test_disk()),
                cffs::core::MkfsParams::tiny(),
                cfg,
            )
            .expect("cffs mkfs"),
        ));
    }
    v
}

#[test]
fn random_traces_match_oracle_on_all_filesystems() {
    for seed in 0..8 {
        let ops = random_trace(seed, 400);
        let mut oracle = ModelFs::new();
        replay(&mut oracle, &ops).expect("oracle replay");
        let want = snapshot(&mut oracle).expect("oracle snapshot");
        for mut fs in all_test_filesystems() {
            let label = fs.label().to_string();
            replay(fs.as_mut(), &ops).unwrap_or_else(|e| panic!("{label} seed {seed}: {e}"));
            let got = snapshot(fs.as_mut()).expect("snapshot");
            assert_eq!(got, want, "{label} diverged from oracle at seed {seed}");
        }
    }
}

#[test]
fn state_survives_remount() {
    for seed in [100u64, 101] {
        let ops = random_trace(seed, 300);
        let mut oracle = ModelFs::new();
        replay(&mut oracle, &ops).expect("oracle replay");
        let want = snapshot(&mut oracle).expect("oracle snapshot");

        // C-FFS with everything on.
        let mut fs = cffs::core::mkfs::mkfs(
            cffs_disksim::Disk::new(models::tiny_test_disk()),
            cffs::core::MkfsParams::tiny(),
            cffs::core::CffsConfig::cffs(),
        )
        .expect("mkfs");
        replay(&mut fs, &ops).expect("replay");
        let disk = fs.unmount().expect("unmount");
        let mut fs2 = cffs::core::Cffs::mount(disk, cffs::core::CffsConfig::cffs()).expect("remount");
        let got = snapshot(&mut fs2).expect("snapshot");
        assert_eq!(got, want, "remounted C-FFS diverged at seed {seed}");

        // Classic FFS.
        let mut fs = cffs::ffs::mkfs::mkfs(
            cffs_disksim::Disk::new(models::tiny_test_disk()),
            cffs::ffs::MkfsParams::tiny(),
            cffs::ffs::FfsOptions::default(),
        )
        .expect("mkfs");
        replay(&mut fs, &ops).expect("replay");
        let disk = fs.unmount().expect("unmount");
        let mut fs2 =
            cffs::ffs::Ffs::mount(disk, cffs::ffs::FfsOptions::default()).expect("remount");
        let got = snapshot(&mut fs2).expect("snapshot");
        assert_eq!(got, want, "remounted FFS diverged at seed {seed}");
    }
}

#[test]
fn grouping_image_readable_with_grouping_disabled() {
    // An image produced with grouping on must read back correctly when
    // mounted with group reads off (the descriptors are advisory for
    // reads).
    let ops = random_trace(7, 250);
    let mut oracle = ModelFs::new();
    replay(&mut oracle, &ops).expect("oracle replay");
    let want = snapshot(&mut oracle).expect("oracle snapshot");

    let mut fs = cffs::core::mkfs::mkfs(
        cffs_disksim::Disk::new(models::tiny_test_disk()),
        cffs::core::MkfsParams::tiny(),
        cffs::core::CffsConfig::cffs(),
    )
    .expect("mkfs");
    replay(&mut fs, &ops).expect("replay");
    let disk = fs.unmount().expect("unmount");
    let mut fs2 = cffs::core::Cffs::mount(disk, cffs::core::CffsConfig::embedded_only())
        .expect("remount without grouping");
    assert_eq!(snapshot(&mut fs2).expect("snapshot"), want);
}

#[test]
fn trait_level_contract_examples() {
    // A hand-written scenario covering the renumbering contract that the
    // random traces exercise only incidentally.
    let fs = build::on_disk(models::tiny_test_disk(), cffs::core::CffsConfig::cffs());
    let root = fs.root();
    let d1 = fs.mkdir(root, "d1").unwrap();
    let d2 = fs.mkdir(root, "d2").unwrap();
    let f = fs.create(d1, "file").unwrap();
    fs.write(f, 0, b"payload").unwrap();

    // link() externalizes and renumbers; the returned ino is live.
    let f2 = fs.link(f, d2, "alias").unwrap();
    assert_ne!(f, f2, "embedded inode must be externalized on link");
    assert_eq!(fs.getattr(f2).unwrap().nlink, 2);
    let mut buf = [0u8; 7];
    assert_eq!(fs.read(f2, 0, &mut buf).unwrap(), 7);
    assert_eq!(&buf, b"payload");
    // The old number is dead.
    assert!(fs.getattr(f).is_err());

    // rename() of an embedded directory renumbers it; children stay
    // reachable through the new number.
    let sub = fs.mkdir(d1, "sub").unwrap();
    let child = fs.create(sub, "x").unwrap();
    fs.write(child, 0, b"hi").unwrap();
    let sub2 = fs.rename(d1, "sub", d2, "submoved").unwrap();
    assert_ne!(sub, sub2);
    let child2 = fs.lookup(sub2, "x").unwrap();
    let mut b2 = [0u8; 2];
    fs.read(child2, 0, &mut b2).unwrap();
    assert_eq!(&b2, b"hi");
}

#[test]
fn deterministic_simulated_time() {
    // Two identical runs must agree to the nanosecond — the whole
    // reproduction depends on determinism.
    let run = || {
        let mut fs = build::on_disk(models::tiny_test_disk(), cffs::core::CffsConfig::cffs());
        let ops = random_trace(55, 200);
        replay(&mut fs, &ops).expect("replay");
        fs.sync().expect("sync");
        fs.now().as_nanos()
    };
    assert_eq!(run(), run());
}

#[test]
fn link_then_unlink_keeps_data_until_last_name() {
    for mut fs in all_test_filesystems() {
        let label = fs.label().to_string();
        let root = fs.root();
        let f = fs.create(root, "orig").unwrap();
        fs.write(f, 0, &[42u8; 5000]).unwrap();
        let f = fs.link(f, root, "second").unwrap();
        fs.unlink(root, "orig").unwrap();
        let att = fs.getattr(f).unwrap();
        assert_eq!(att.nlink, 1, "{label}");
        let mut buf = vec![0u8; 5000];
        assert_eq!(fs.read(f, 0, &mut buf).unwrap(), 5000, "{label}");
        assert!(buf.iter().all(|&b| b == 42), "{label}");
        fs.unlink(root, "second").unwrap();
        assert!(fs.getattr(f).is_err(), "{label}");
    }
}

#[test]
fn explicit_op_sequence_with_replacement_renames() {
    let ops = vec![
        Op::Mkdir { path: "/a".into() },
        Op::Write { path: "/a/x".into(), data: vec![1; 100] },
        Op::Write { path: "/a/y".into(), data: vec![2; 200] },
        Op::Rename { from: "/a/x".into(), to: "/a/y".into() },
        Op::Write { path: "/a/z".into(), data: vec![3; 9000] },
        Op::Rename { from: "/a/z".into(), to: "/b".into() },
        Op::Truncate { path: "/b".into(), size: 4096 },
    ];
    let mut oracle = ModelFs::new();
    replay(&mut oracle, &ops).expect("oracle");
    let want = snapshot(&mut oracle).expect("oracle snapshot");
    for mut fs in all_test_filesystems() {
        let label = fs.label().to_string();
        replay(fs.as_mut(), &ops).expect("replay");
        assert_eq!(snapshot(fs.as_mut()).expect("snapshot"), want, "{label}");
    }
}

//! Telemetry feed integration tests: schema validity end-to-end, and
//! the determinism contract — a seeded run's feed *renders* (via the
//! `cffs-top` engine) byte-identically across runs, single- and
//! multi-threaded. The feed files themselves carry host-time
//! `lock_wait_ns_*` deltas, so only the rendering (which skips them) is
//! the deterministic artifact.

use cffs::build;
use cffs::feedview::FeedView;
use cffs::obs::feed::{self, Cadence};
use cffs::prelude::*;
use cffs_core::CffsConfig;
use cffs_disksim::models;
use cffs_workloads::concurrent::{self, ConcurrentParams};
use cffs_workloads::soak::{self, SoakParams};

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cffs-feedtest-{tag}-{}.jsonl", std::process::id()))
}

/// Replay a feed through the `cffs-top` rendering engine in headless
/// (deterministic) mode, concatenating every frame's dashboard.
fn render_feed(text: &str) -> String {
    let frames = feed::parse_feed(text).expect("every frame validates");
    assert!(!frames.is_empty(), "feed has frames");
    let mut view = FeedView::new(false);
    let mut out = String::new();
    for f in &frames {
        view.push(f);
        out.push_str(&view.render());
        out.push_str("---\n");
    }
    out
}

/// One seeded single-threaded producer run: soak churn on a fresh C-FFS
/// with a simulated-cadence tap (frames cut at deterministic clock
/// points). Returns the feed text.
fn sim_producer(tag: &str, seed: u64) -> String {
    let path = tmp(tag);
    let sink = feed::FeedSink::create(&path).expect("create feed");
    let mut fs = build::on_disk(
        models::tiny_test_disk(),
        CffsConfig::cffs().with_mode(MetadataMode::Delayed),
    );
    let obs = fs.obs();
    {
        let _tap = feed::attach(&sink, &obs, "soak", Cadence::Sim(feed::SIM_INTERVAL_DEFAULT_NS));
        let p = SoakParams { rounds: 2, ndirs: 3, files_per_dir: 10, seed, ..SoakParams::default() };
        soak::run(&mut fs, &p, |_| {}).expect("soak");
    }
    let text = std::fs::read_to_string(&path).expect("read feed");
    std::fs::remove_file(&path).ok();
    text
}

#[test]
fn single_threaded_feed_rendering_is_byte_deterministic() {
    let a = sim_producer("sim-a", 1997);
    let b = sim_producer("sim-b", 1997);
    let (ra, rb) = (render_feed(&a), render_feed(&b));
    assert!(
        ra == rb,
        "same seed must render byte-identically;\nfirst divergence at byte {}",
        ra.bytes().zip(rb.bytes()).position(|(x, y)| x != y).unwrap_or(ra.len().min(rb.len()))
    );
    // The run did real work and the frames show it.
    assert!(ra.contains("stage=soak"), "{ra}");
    assert!(ra.contains("cg heatmap"), "{ra}");
    let frames = feed::parse_feed(&a).unwrap();
    assert!(frames.len() >= 3, "sim cadence cut several frames, got {}", frames.len());
    // A different seed produces a different feed (the determinism above
    // is not vacuous).
    let c = sim_producer("sim-c", 4242);
    assert!(render_feed(&c) != ra, "different seeds must differ");
}

/// One seeded multi-threaded producer run: the E14 concurrent workload
/// with a manual-cadence tap cutting one frame per quiescent phase
/// barrier. Returns the feed text.
fn concurrent_producer(tag: &str, seed: u64) -> String {
    let path = tmp(tag);
    let sink = feed::FeedSink::create(&path).expect("create feed");
    let fs = build::on_disk(
        models::tiny_test_disk(),
        CffsConfig::cffs().with_mode(MetadataMode::Delayed),
    );
    let obs = cffs_core::Cffs::obs(&fs);
    {
        let tap = feed::attach(&sink, &obs, "concurrent", Cadence::Manual);
        // One dir per thread on a 4-CG disk: the round-robin dir rotor
        // gives each thread its own cylinder group, so no two threads
        // ever race on the same CG allocator. With shared CGs the churn
        // phase's alloc/free interleaving picks different physical
        // blocks run to run — same work, different seeks — and the
        // barrier timestamp legitimately shifts by a disk revolution.
        let p = ConcurrentParams {
            nthreads: 4,
            dirs_per_thread: 1,
            files_per_dir: 16,
            file_size: 4096,
            shared_dirs: 0,
            shared_files_per_thread: 0,
            read_rounds: 2,
            seed,
        };
        concurrent::run_with_phase_hook(&fs, &p, |phase| tap.frame(phase))
            .expect("concurrent run");
    }
    let text = std::fs::read_to_string(&path).expect("read feed");
    std::fs::remove_file(&path).ok();
    text
}

#[test]
fn concurrent_feed_rendering_is_byte_deterministic() {
    let a = concurrent_producer("conc-a", 7);
    let b = concurrent_producer("conc-b", 7);
    let (ra, rb) = (render_feed(&a), render_feed(&b));
    if ra != rb {
        std::fs::write("/tmp/feed-a.jsonl", &a).ok();
        std::fs::write("/tmp/feed-b.jsonl", &b).ok();
        for (la, lb) in ra.lines().zip(rb.lines()) {
            if la != lb {
                panic!(
                    "multi-threaded producer must render byte-identically;\n  a: {la}\n  b: {lb}"
                );
            }
        }
        panic!("renderings differ in length: {} vs {}", ra.len(), rb.len());
    }
    // Every client thread's slot shows up in the per-thread panel
    // (slots 1..=4; slot 0 is the main thread's setup/sync work).
    for t in 1..=4 {
        assert!(ra.contains(&format!("t{t}:")), "thread slot {t} missing:\n{ra}");
    }
    // One frame per phase barrier plus the detach frame.
    let frames = feed::parse_feed(&a).unwrap();
    assert_eq!(frames.len(), 5, "setup/populate/warm/churn + detach");
    let stages: Vec<&str> =
        frames.iter().filter_map(|f| f.get("stage").and_then(|s| s.as_str())).collect();
    assert_eq!(stages, ["setup", "populate", "warm", "churn", "churn"]);
}

#[test]
fn feed_frames_validate_against_the_shared_schema_checker() {
    // parse_feed already validates; this pins the specific shape a
    // downstream consumer greps for.
    let text = sim_producer("schema", 11);
    let frames = feed::parse_feed(&text).unwrap();
    let last = frames.last().unwrap();
    assert!(last.get("seq").and_then(|s| s.as_u64()).unwrap() as usize == frames.len() - 1);
    let cgs = last.get("cgs").and_then(|c| c.as_arr()).unwrap();
    assert!(!cgs.is_empty(), "mounted C-FFS configures the per-CG table");
    let used: u64 =
        cgs.iter().filter_map(|c| c.get("used").and_then(|u| u.as_u64())).sum();
    assert!(used > 0, "soak left blocks allocated");
}

//! Fault injection: crashes *inside* a multi-sector write.
//!
//! The disk guarantees sector atomicity and nothing more: a crash during a
//! 4 KB block write may commit any sector-aligned prefix. The paper builds
//! directly on this ("by keeping the two items in the same sector, we can
//! guarantee that they will be consistent with respect to each other"), so
//! the suite injects torn writes at every possible split point and demands
//! that:
//!
//! * fsck repairs every torn image back to a clean state, for every
//!   variant and every tear point;
//! * with embedded inodes, a name that survives the tear always carries a
//!   complete, valid inode — never half of one.

use cffs::core::{fsck, Cffs, CffsConfig, MkfsParams};
use cffs::prelude::*;
use cffs_disksim::models;
use cffs_disksim::Disk;

fn fresh(cfg: CffsConfig) -> Cffs {
    cffs::core::mkfs::mkfs(Disk::new(models::tiny_test_disk()), MkfsParams::tiny(), cfg)
        .expect("mkfs")
}

/// Tear the most recent write at every sector boundary and check that fsck
/// converges on each resulting image.
fn tear_everywhere_and_repair(fs: &Cffs, context: &str) {
    for keep in 0..=8 {
        let Some(mut img) = fs.crash_image_torn(keep) else { return };
        fsck::fsck(&mut img, true)
            .unwrap_or_else(|e| panic!("{context}, tear at {keep}: repair diverged: {e}"));
        let verify = fsck::fsck(&mut img, false).expect("verify");
        assert!(
            verify.clean(),
            "{context}, tear at {keep}: still dirty: {:?}",
            verify.errors
        );
        // And every surviving name resolves to a valid inode.
        let fs2 = Cffs::mount(img, CffsConfig::cffs()).expect("mount repaired");
        let mut stack = vec![fs2.root()];
        while let Some(dir) = stack.pop() {
            for e in fs2.readdir(dir).expect("readdir") {
                let attr = fs2
                    .getattr(e.ino)
                    .unwrap_or_else(|err| panic!("{context}, tear at {keep}: '{}' dangles: {err}", e.name));
                if attr.kind == FileKind::Dir {
                    stack.push(e.ino);
                }
            }
        }
    }
}

#[test]
fn torn_writes_during_creates_all_variants() {
    for cfg in [
        CffsConfig::cffs(),
        CffsConfig::conventional(),
        CffsConfig::embedded_only(),
        CffsConfig::grouping_only(),
    ] {
        let label = cfg.label.clone();
        let fs = fresh(cfg);
        let root = fs.root();
        let dir = fs.mkdir(root, "d").unwrap();
        for i in 0..12 {
            let ino = fs.create(dir, &format!("f{i}")).unwrap();
            fs.write(ino, 0, &vec![i as u8; 2000]).unwrap();
            tear_everywhere_and_repair(&fs, &format!("{label} after create f{i}"));
        }
    }
}

#[test]
fn torn_writes_during_deletes_and_renames() {
    let fs = fresh(CffsConfig::cffs());
    let root = fs.root();
    let dir = fs.mkdir(root, "d").unwrap();
    for i in 0..10 {
        let ino = fs.create(dir, &format!("f{i}")).unwrap();
        fs.write(ino, 0, &vec![7u8; 1024]).unwrap();
    }
    fs.sync().unwrap();
    for i in 0..5 {
        fs.unlink(dir, &format!("f{i}")).unwrap();
        tear_everywhere_and_repair(&fs, &format!("after unlink f{i}"));
    }
    for i in 5..10 {
        fs.rename(dir, &format!("f{i}"), root, &format!("moved{i}")).unwrap();
        tear_everywhere_and_repair(&fs, &format!("after rename f{i}"));
    }
}

#[test]
fn torn_writes_during_sync_flush() {
    // Delayed mode: everything lands in one big flush; tear its last write.
    let fs = fresh(CffsConfig::cffs().with_mode(MetadataMode::Delayed));
    let root = fs.root();
    for d in 0..4 {
        let dir = fs.mkdir(root, &format!("d{d}")).unwrap();
        for f in 0..8 {
            let ino = fs.create(dir, &format!("f{f}")).unwrap();
            fs.write(ino, 0, &vec![(d * f) as u8; 3000]).unwrap();
        }
    }
    fs.sync().unwrap();
    tear_everywhere_and_repair(&fs, "after delayed-mode sync");
}

/// The atomicity guarantee itself, stated positively: a completed
/// embedded-inode create survives a torn *later* write untouched, because
/// name and inode went to disk in one sector program.
#[test]
fn embedded_name_inode_pair_never_splits() {
    let fs = fresh(CffsConfig::cffs());
    let root = fs.root();
    let dir = fs.mkdir(root, "d").unwrap();
    let a = fs.create(dir, "complete").unwrap();
    fs.write(a, 0, b"done").unwrap();
    // A second create's sector write is the one that tears.
    let _b = fs.create(dir, "torn-victim").unwrap();
    for keep in 0..=8 {
        let Some(mut img) = fs.crash_image_torn(keep) else { break };
        fsck::fsck(&mut img, true).expect("repair");
        let mut fs2 = Cffs::mount(img, CffsConfig::cffs()).expect("mount");
        let d = path::resolve(&mut fs2, "/d").expect("dir present");
        // "complete" must exist with a whole inode; "torn-victim" is
        // all-or-nothing — present with a valid inode, or absent.
        let ino = fs2.lookup(d, "complete").expect("completed create survives");
        assert_eq!(fs2.getattr(ino).expect("valid inode").kind, FileKind::File);
        match fs2.lookup(d, "torn-victim") {
            Ok(v) => {
                fs2.getattr(v).expect("if the name landed, the inode landed with it");
            }
            Err(FsError::NotFound) => {}
            Err(e) => panic!("unexpected: {e}"),
        }
    }
}

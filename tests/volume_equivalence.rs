//! Property-based equivalence: a multi-disk [`VolumeSet`] must be
//! logically indistinguishable from a single C-FFS.
//!
//! Proptest explores seeded sequences of concurrent-surface operations
//! (mkdir/create/write/unlink/sync, with writes big enough to cross the
//! stripe threshold) and applies each sequence, single-threaded, to two
//! subjects: a 2–3 volume set with an 8 KB stripe policy and a plain
//! one-disk `Cffs` oracle. Every op's success/failure must agree, every
//! mid-sequence read must return identical bytes, and the final
//! namespaces must walk identically (names, kinds, sizes, contents —
//! holes included). Then the set runs one regroup pass per shard —
//! which renumbers embedded inos and invalidates every handle — and the
//! walk must *still* match, with every volume fsck-clean.

use cffs::core::{Cffs, CffsConfig, MkfsParams};
use cffs::prelude::*;
use cffs::volume::{VolumeCfg, VolumeSet};
use cffs_disksim::{models, Disk};
use cffs_fslib::ConcurrentFs;
use proptest::prelude::*;

/// One operation on the concurrent surface. Paths come from a small
/// fixed universe so sequences collide (create-over-dir, unlink of a
/// striped file, write-after-unlink) instead of wandering.
#[derive(Debug, Clone)]
enum Op {
    Mkdir { dir: &'static str, name: String },
    Create { dir: &'static str, name: String },
    /// `open(O_CREAT)` + `pwrite`: creates the file if absent.
    Write { dir: &'static str, name: String, off: u64, len: usize, byte: u8 },
    Unlink { dir: &'static str, name: String },
    /// Read from both subjects and compare bytes mid-sequence.
    ReadCheck { dir: &'static str, name: String, off: u64, len: usize },
    Sync,
}

const DIRS: [&str; 3] = ["", "/d0", "/d0/d1"];

fn arb_name() -> impl Strategy<Value = String> {
    (0usize..4).prop_map(|i| format!("f{i}"))
}

fn arb_dir() -> impl Strategy<Value = &'static str> {
    prop::sample::select(DIRS.to_vec())
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => (arb_dir(), prop::sample::select(vec!["d0", "d1"]))
            .prop_map(|(dir, n)| Op::Mkdir { dir, name: n.to_string() }),
        2 => (arb_dir(), arb_name()).prop_map(|(dir, name)| Op::Create { dir, name }),
        // Lengths up to 24 KB and offsets up to 20 KB: well past the
        // subject's 8 KB stripe threshold, so promotion, multi-part
        // writes, and holes between parts all get exercised.
        4 => (arb_dir(), arb_name(), 0u64..20_000, 0usize..24_000, any::<u8>())
            .prop_map(|(dir, name, off, len, byte)| Op::Write { dir, name, off, len, byte }),
        2 => (arb_dir(), arb_name()).prop_map(|(dir, name)| Op::Unlink { dir, name }),
        2 => (arb_dir(), arb_name(), 0u64..30_000, 1usize..24_000)
            .prop_map(|(dir, name, off, len)| Op::ReadCheck { dir, name, off, len }),
        1 => Just(Op::Sync),
    ]
}

fn resolve(fs: &(impl ConcurrentFs + ?Sized), path: &str) -> FsResult<Ino> {
    let mut cur = fs.root();
    for c in path.split('/').filter(|c| !c.is_empty()) {
        cur = fs.lookup(cur, c)?;
    }
    Ok(cur)
}

/// Apply one op; the return value is what must agree across subjects.
fn apply(fs: &(impl ConcurrentFs + ?Sized), op: &Op) -> Result<Option<Vec<u8>>, String> {
    let dir_of = |d: &str| resolve(fs, d).map_err(|e| format!("resolve {d:?}: {e:?}"));
    match op {
        Op::Mkdir { dir, name } => {
            let d = dir_of(dir)?;
            fs.mkdir(d, name).map(|_| None).map_err(|e| format!("{e:?}"))
        }
        Op::Create { dir, name } => {
            let d = dir_of(dir)?;
            fs.create(d, name).map(|_| None).map_err(|e| format!("{e:?}"))
        }
        Op::Write { dir, name, off, len, byte } => {
            let d = dir_of(dir)?;
            let ino = match fs.lookup(d, name) {
                Ok(i) => i,
                Err(FsError::NotFound) => fs.create(d, name).map_err(|e| format!("{e:?}"))?,
                Err(e) => return Err(format!("{e:?}")),
            };
            fs.write(ino, *off, &vec![*byte; *len]).map(|_| None).map_err(|e| format!("{e:?}"))
        }
        Op::Unlink { dir, name } => {
            let d = dir_of(dir)?;
            fs.unlink(d, name).map(|_| None).map_err(|e| format!("{e:?}"))
        }
        Op::ReadCheck { dir, name, off, len } => {
            let d = dir_of(dir)?;
            let ino = fs.lookup(d, name).map_err(|e| format!("{e:?}"))?;
            let mut buf = vec![0u8; *len];
            let n = fs.read(ino, *off, &mut buf).map_err(|e| format!("{e:?}"))?;
            buf.truncate(n);
            Ok(Some(buf))
        }
        Op::Sync => fs.sync().map(|_| None).map_err(|e| format!("{e:?}")),
    }
}

/// Logical state: every path with its kind, size, and (for files) full
/// contents, resolved fresh from the root — so it survives handle
/// invalidation.
fn walk(fs: &(impl ConcurrentFs + ?Sized), dir: Ino, prefix: &str, out: &mut Vec<String>) {
    let mut entries = fs.readdir(dir).expect("readdir");
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    for e in entries {
        let path = format!("{prefix}/{}", e.name);
        let attr = fs.getattr(e.ino).expect("getattr");
        match attr.kind {
            FileKind::Dir => {
                out.push(format!("{path}/ "));
                walk(fs, e.ino, &path, out);
            }
            FileKind::File => {
                let mut buf = vec![0u8; attr.size as usize];
                let n = fs.read(e.ino, 0, &mut buf).expect("read");
                assert_eq!(n, buf.len(), "short read of {path}");
                // Content fingerprint: size plus a rolling sum is enough
                // to catch byte-level divergence without megabyte dumps
                // in proptest's shrink output.
                let sum = buf.iter().fold(0u64, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64));
                out.push(format!("{path} size={} sum={sum:#x}", attr.size));
            }
        }
    }
}

fn snapshot(fs: &(impl ConcurrentFs + ?Sized)) -> Vec<String> {
    let mut out = Vec::new();
    walk(fs, fs.root(), "", &mut out);
    out
}

fn subject(nvols: usize) -> VolumeSet {
    let disks = (0..nvols).map(|_| Disk::new(models::tiny_test_disk())).collect();
    let cfg = VolumeCfg::new(CffsConfig::cffs())
        .with_mkfs(MkfsParams::tiny())
        .with_stripes(8 * 1024, 8 * 1024);
    VolumeSet::format(disks, cfg).expect("format volume set")
}

fn oracle() -> Cffs {
    cffs::core::mkfs::mkfs(
        Disk::new(models::tiny_test_disk()),
        MkfsParams::tiny(),
        CffsConfig::cffs(),
    )
    .expect("mkfs oracle")
}

/// Coverage guard for the property above: the op mix must actually
/// drive files into the striped layout, or the equivalence proof says
/// nothing about striping. A single 24 KB write crosses the 8 KB
/// threshold and must land in the stripe registry.
#[test]
fn write_past_threshold_stripes() {
    let vs = subject(3);
    let single = oracle();
    let op = Op::Write { dir: "", name: "f0".to_string(), off: 0, len: 24_000, byte: 7 };
    apply(&vs, &op).expect("set write");
    apply(&single, &op).expect("single write");
    assert!(vs.stripe_count() > 0, "24 KB write did not stripe");
    assert_eq!(snapshot(&vs), snapshot(&single));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// A 2–3 volume set and a single C-FFS agree on every op outcome,
    /// every read, the final walk, the walk again after a regroup pass
    /// on every shard, and fsck.
    #[test]
    fn volume_set_matches_single_cffs(
        nvols in 2usize..=3,
        ops in prop::collection::vec(arb_op(), 1..40),
    ) {
        let mut vs = subject(nvols);
        let single = oracle();
        for (i, op) in ops.iter().enumerate() {
            let got = apply(&vs, op);
            let want = apply(&single, op);
            // Outcomes must agree in success; payloads (read bytes)
            // must agree exactly. Error *messages* may differ in
            // detail, so only the Ok/Err shape is compared there.
            match (&got, &want) {
                (Ok(g), Ok(w)) => prop_assert_eq!(g, w, "op {} {:?} payload diverged", i, op),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "op {} {:?}: set {:?} vs single {:?}", i, op, got, want),
            }
        }
        prop_assert_eq!(snapshot(&vs), snapshot(&single), "final walk diverged");

        // Regroup every shard: renumbers embedded inos and invalidates
        // all handles, but must not change the logical namespace.
        vs.regroup_all(&cffs::regroup::RegroupConfig::exhaustive()).expect("regroup");
        prop_assert_eq!(snapshot(&vs), snapshot(&single), "walk diverged after regroup");
        for (v, rep) in vs.fsck_all().expect("fsck").iter().enumerate() {
            prop_assert!(rep.clean(), "volume {} dirty after regroup: {:?}", v, rep.errors);
        }
    }
}

//! Capacity behaviour: ENOSPC, recovery after deletion, group-slack
//! reclamation under pressure, and the dynamic-inode claim.

use cffs::core::{Cffs, CffsConfig, MkfsParams};
use cffs::prelude::*;
use cffs_disksim::geometry::{Geometry, Zone};
use cffs_disksim::{Disk, DiskModel, SeekCurve, SimDuration};

/// A very small disk (~8 MB) so capacity tests run fast.
fn mini_disk() -> Disk {
    let geometry = Geometry::new(2, vec![Zone { cylinders: 100, sectors_per_track: 80 }], 4, 8);
    let cylinders = geometry.total_cylinders();
    Disk::new(DiskModel {
        name: "Mini 8M".to_string(),
        geometry,
        seek: SeekCurve::fit(cylinders, 1.0, 6.0, 14.0),
        rpm: 5400,
        head_switch: SimDuration::from_micros(700),
        write_settle: SimDuration::from_micros(600),
        controller_overhead: SimDuration::from_micros(600),
        bus_mb_per_s: 10.0,
        cache: cffs_disksim::cache::OnboardCacheConfig::disabled(),
    })
}

fn mini_fs(cfg: CffsConfig) -> Cffs {
    cffs::core::mkfs::mkfs(mini_disk(), MkfsParams { cg_size: 256 }, cfg).expect("mkfs")
}

#[test]
fn fill_to_enospc_then_recover() {
    for cfg in [CffsConfig::cffs(), CffsConfig::conventional()] {
        let label = cfg.label.clone();
        let fs = mini_fs(cfg);
        let root = fs.root();
        let dir = fs.mkdir(root, "fill").unwrap();
        let mut created = 0u32;
        let payload = vec![0xABu8; 4096];
        loop {
            let name = format!("f{created}");
            let ino = match fs.create(dir, &name) {
                Ok(i) => i,
                Err(FsError::NoSpace | FsError::NoInodes) => break,
                Err(e) => panic!("{label}: unexpected {e}"),
            };
            match fs.write(ino, 0, &payload) {
                Ok(_) => created += 1,
                Err(FsError::NoSpace) => {
                    fs.unlink(dir, &name).unwrap();
                    break;
                }
                Err(e) => panic!("{label}: unexpected {e}"),
            }
            assert!(created < 10_000, "{label}: disk never filled");
        }
        assert!(created > 500, "{label}: filled after only {created} files");
        let st = fs.statfs().unwrap();
        assert!(
            st.free_blocks < st.total_blocks / 50,
            "{label}: {} of {} still free at ENOSPC",
            st.free_blocks,
            st.total_blocks
        );
        // Delete a third, then creation works again.
        for i in (0..created).step_by(3) {
            fs.unlink(dir, &format!("f{i}")).unwrap();
        }
        let ino = fs.create(dir, "after").unwrap_or_else(|e| panic!("{label}: {e}"));
        fs.write(ino, 0, &payload).unwrap_or_else(|e| panic!("{label}: {e}"));
        // Everything still checks out.
        let mut img = fs.unmount().unwrap();
        let report = cffs::core::fsck::fsck(&mut img, false).unwrap();
        assert!(report.clean(), "{label}: {:?}", report.errors);
    }
}

#[test]
fn group_slack_is_reclaimed_under_pressure() {
    let fs = mini_fs(CffsConfig::cffs());
    let root = fs.root();
    // Many directories, one tiny file each: maximal slack (each carves a
    // 16-block extent for ~2 live blocks).
    let mut d = 0;
    loop {
        let dir = match fs.mkdir(root, &format!("d{d}")) {
            Ok(i) => i,
            Err(FsError::NoSpace) => break,
            Err(e) => panic!("unexpected {e}"),
        };
        match fs.create(dir, "f").and_then(|ino| fs.write(ino, 0, b"x").map(|_| ())) {
            Ok(()) => d += 1,
            Err(FsError::NoSpace) => break,
            Err(e) => panic!("unexpected {e}"),
        }
        if d > 5000 {
            panic!("disk never filled");
        }
    }
    // At ENOSPC with slack-trim working, reserved-but-unused group space
    // must have been reclaimed rather than wasted.
    let st = fs.statfs().unwrap();
    assert!(
        st.group_slack_blocks < st.total_blocks / 20,
        "slack not reclaimed: {} of {}",
        st.group_slack_blocks,
        st.total_blocks
    );
    // Far more directories than naive 16-block-per-dir reservation allows.
    let naive_cap = st.total_blocks / 16;
    assert!(
        d as u64 > naive_cap,
        "only {d} dirs; un-reclaimed slack would cap near {naive_cap}"
    );
}

#[test]
fn no_static_inode_limit() {
    // FFS at this geometry runs out of *inodes*; C-FFS with embedding
    // keeps creating until *space* runs out. [Forin94]'s point, live.
    let fs = mini_fs(CffsConfig::cffs());
    let root = fs.root();
    let dir = fs.mkdir(root, "many").unwrap();
    let mut n = 0u32;
    loop {
        match fs.create(dir, &format!("f{n}")) {
            Ok(_) => n += 1,
            Err(FsError::NoSpace) => break,
            Err(e) => panic!("unexpected {e}"),
        }
        if n > 20_000 {
            break; // plenty — empty files are cheap, that's the point
        }
    }
    // 8 MB disk, empty files: thousands of inodes with zero inode-table
    // reservation (24 embedded entries per 4 KB directory block).
    assert!(n > 5_000, "only {n} empty files fit");
    let st = fs.statfs().unwrap();
    assert_eq!(st.total_inodes, u64::MAX, "inode count is dynamic");
}

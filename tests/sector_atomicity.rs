//! The embedded-inode atomicity invariant, checked on real images.
//!
//! Section 3 of the paper builds crash safety on one property: a directory
//! entry's name and its embedded inode image always live inside the same
//! 512-byte sector, so a single sector write updates both atomically.
//! `dirent.rs` enforces this at insertion time; these tests verify it
//! survives *sequences* of operations on a live file system — renames
//! (which renumber embedded inodes), hard-link transitions (which migrate
//! an inode from embedded to the external file), unlink/create churn that
//! splits and coalesces records, and directory growth.

use cffs::core::dirent::{self, external_len, EntryLoc, DIRBLKSIZ};
use cffs::core::{fsck, Cffs, CffsConfig, MkfsParams};
use cffs::prelude::*;
use cffs_disksim::models;
use cffs_disksim::Disk;
use cffs_fslib::inode::INODE_SIZE;
use cffs_fslib::{BLOCK_SIZE, SECTORS_PER_BLOCK};

fn fresh(cfg: CffsConfig) -> Cffs {
    cffs::core::mkfs::mkfs(Disk::new(models::tiny_test_disk()), MkfsParams::tiny(), cfg)
        .expect("mkfs")
}

/// Physical blocks of every directory in the namespace. `readdir` primes
/// the logical cache index; the cache then answers where each block lives.
fn all_dir_blocks(fs: &mut Cffs) -> Vec<u64> {
    let mut blocks = Vec::new();
    let mut stack = vec![fs.root()];
    while let Some(dir) = stack.pop() {
        let entries = fs.readdir(dir).expect("readdir");
        let attr = fs.getattr(dir).expect("getattr");
        for lbn in 0..attr.size.div_ceil(BLOCK_SIZE as u64) {
            if let Some(blk) = fs.cache_block_of(dir, lbn) {
                blocks.push(blk);
            }
        }
        for e in entries {
            if e.kind == FileKind::Dir {
                stack.push(e.ino);
            }
        }
    }
    blocks
}

/// Sync, snapshot the durable image, and assert that no entry in any
/// directory block straddles a sector boundary.
fn assert_sector_atomic(fs: &mut Cffs, ctx: &str) {
    fs.sync().expect("sync");
    let blocks = all_dir_blocks(fs);
    assert!(!blocks.is_empty(), "{ctx}: found no directory blocks");
    let img = fs.crash_image();
    for blk in blocks {
        let mut buf = vec![0u8; BLOCK_SIZE];
        img.raw_read(blk * SECTORS_PER_BLOCK, &mut buf);
        for e in dirent::list(&buf).unwrap_or_else(|err| {
            panic!("{ctx}: directory block {blk} undecodable: {err}")
        }) {
            // Last byte the entry owns: through the inode image when
            // embedded, through the padded name when external.
            let end = match e.loc {
                EntryLoc::Embedded(img_off) => img_off + INODE_SIZE,
                EntryLoc::External(_) => e.offset + external_len(e.name.len()),
            };
            assert_eq!(
                e.offset / DIRBLKSIZ,
                (end - 1) / DIRBLKSIZ,
                "{ctx}: entry '{}' in block {blk} straddles a sector boundary \
                 (bytes {}..{})",
                e.name,
                e.offset,
                end
            );
        }
    }
}

fn churn(cfg: CffsConfig) {
    let label = cfg.label.clone();
    let mut fs = fresh(cfg);
    let root = fs.root();
    let a = fs.mkdir(root, "a").unwrap();
    let b = fs.mkdir(root, "b").unwrap();

    // Varied name lengths exercise every padding case and force the
    // directory past one block.
    let mut files = Vec::new();
    for i in 0..30usize {
        let name = format!("{}{i}", "n".repeat(1 + (i * 7) % 50));
        let ino = fs.create(a, &name).unwrap();
        fs.write(ino, 0, &vec![i as u8; 700]).unwrap();
        files.push((name, ino));
    }
    assert_sector_atomic(&mut fs, &format!("{label}: after creates"));

    // Hard links: the embedded inode migrates to the external file
    // (convert_to_external rewrites the entry in place).
    for i in (0..30).step_by(5) {
        let (_, ino) = files[i];
        fs.link(ino, b, &format!("link{i}")).unwrap();
    }
    assert_sector_atomic(&mut fs, &format!("{label}: after links"));

    // Drop the links again: link-count transitions back to 1.
    for i in (0..30).step_by(5) {
        fs.unlink(b, &format!("link{i}")).unwrap();
    }
    assert_sector_atomic(&mut fs, &format!("{label}: after unlinking links"));

    // Renames: within a directory (renumbering in place) and across
    // directories (remove + insert, possibly re-embedding).
    for i in (1..30).step_by(3) {
        let (name, _) = files[i].clone();
        let nname = format!("renamed-{}{i}", "m".repeat(1 + (i * 11) % 40));
        let nino = fs.rename(a, &name, a, &nname).unwrap();
        files[i] = (nname, nino);
    }
    for i in (2..30).step_by(4) {
        let (name, _) = files[i].clone();
        let nino = fs.rename(a, &name, b, &name).unwrap();
        files[i] = (name, nino);
    }
    assert_sector_atomic(&mut fs, &format!("{label}: after renames"));

    // Unlink/create churn: open holes of one size, fill with another, so
    // record claiming splits slack in every chunk position.
    for i in (0..30).step_by(2) {
        let (name, _) = &files[i];
        let dir = if (2..30).step_by(4).any(|j| j == i) { b } else { a };
        fs.unlink(dir, name).unwrap();
    }
    for i in 0..12usize {
        let name = format!("{}{i}", "z".repeat(1 + (i * 13) % 55));
        let ino = fs.create(a, &name).unwrap();
        fs.write(ino, 0, &vec![9u8; 300]).unwrap();
    }
    assert_sector_atomic(&mut fs, &format!("{label}: after churn"));

    // The image is also consistent end to end.
    let mut img = fs.unmount().expect("unmount");
    let report = fsck::fsck(&mut img, false).expect("fsck");
    assert!(report.clean(), "{label}: fsck errors: {:?}", report.errors);
}

#[test]
fn entries_never_straddle_sectors_embedded() {
    churn(CffsConfig::cffs());
}

#[test]
fn entries_never_straddle_sectors_external() {
    // Embedding disabled: every entry is external, but the layout rule
    // (entry within one 512-byte chunk) still holds.
    churn(CffsConfig::conventional());
}

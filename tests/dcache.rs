//! Namespace cache (dcache) consistency, end to end.
//!
//! The cache's contract: a hit — positive or negative — must always give
//! the same answer a directory scan would. Every test here sets up a
//! state where a *stale* entry would give the wrong answer (cached
//! `NotFound` after a create, a cached ino after rename/unlink/
//! relocation renumbered it) and asserts the hooks kept the cache
//! truthful. Counters prove the cache was actually exercised: a test
//! that never hits the cache proves nothing.

use cffs::core::{fsck, Cffs, CffsConfig, MkfsParams};
use cffs::prelude::*;
use cffs_disksim::models;
use cffs_disksim::Disk;
use cffs_obs::Ctr;

fn fresh(entries: usize) -> Cffs {
    cffs::core::mkfs::mkfs(
        Disk::new(models::tiny_test_disk()),
        MkfsParams::tiny(),
        CffsConfig::cffs().with_dcache(entries),
    )
    .expect("mkfs")
}

fn ctr(fs: &Cffs, c: Ctr) -> u64 {
    fs.obs().get(c)
}

fn assert_fsck_clean(fs: &Cffs, context: &str) {
    Cffs::sync(fs).expect("sync");
    let mut img = fs.crash_image();
    let report = fsck::fsck(&mut img, false).expect("fsck runs");
    assert!(report.clean(), "{context}: fsck found {:?}", report.errors);
}

#[test]
fn negative_entry_is_cached_and_invalidated_by_create() {
    let mut fs = fresh(256);
    let root = fs.root();
    assert_eq!(fs.lookup(root, "ghost"), Err(FsError::NotFound));
    let neg_before = ctr(&fs, Ctr::DcacheNegHits);
    assert_eq!(fs.lookup(root, "ghost"), Err(FsError::NotFound));
    assert_eq!(
        ctr(&fs, Ctr::DcacheNegHits),
        neg_before + 1,
        "second failed lookup must be served by the negative entry"
    );
    // Create must both succeed (not be fooled by the cached NotFound)
    // and kill the negative entry.
    let ino = fs.create(root, "ghost").expect("create over a negative entry");
    assert_eq!(fs.lookup(root, "ghost"), Ok(ino));
    fs.write(ino, 0, b"alive").expect("write");
    assert_eq!(cffs_fslib::path::read_file(&mut fs, "/ghost").expect("read"), b"alive");
}

#[test]
fn negative_entry_is_invalidated_by_mkdir_and_rename_destination() {
    let fs = fresh(256);
    let root = fs.root();
    // mkdir over a cached NotFound.
    assert_eq!(fs.lookup(root, "sub"), Err(FsError::NotFound));
    let sub = fs.mkdir(root, "sub").expect("mkdir over a negative entry");
    assert_eq!(fs.lookup(root, "sub"), Ok(sub));
    // rename *into* a cached NotFound: the destination name must resolve
    // afterwards.
    let f = fs.create(root, "src").expect("create");
    fs.write(f, 0, b"payload").expect("write");
    assert_eq!(fs.lookup(root, "dst"), Err(FsError::NotFound));
    fs.rename(root, "src", root, "dst").expect("rename into negative entry");
    assert_eq!(fs.lookup(root, "src"), Err(FsError::NotFound));
    let dst = fs.lookup(root, "dst").expect("destination resolves");
    let mut buf = [0u8; 7];
    assert_eq!(fs.read(dst, 0, &mut buf).expect("read"), 7);
    assert_eq!(&buf, b"payload");
}

#[test]
fn unlink_and_rmdir_leave_no_stale_positive_entry() {
    let fs = fresh(256);
    let root = fs.root();
    let ino = fs.create(root, "f").expect("create");
    assert_eq!(fs.lookup(root, "f"), Ok(ino)); // cache the positive entry
    fs.unlink(root, "f").expect("unlink");
    assert_eq!(fs.lookup(root, "f"), Err(FsError::NotFound));

    let d = fs.mkdir(root, "d").expect("mkdir");
    assert_eq!(fs.lookup(root, "d"), Ok(d));
    fs.rmdir(root, "d").expect("rmdir");
    assert_eq!(fs.lookup(root, "d"), Err(FsError::NotFound));
    // Recreating the names must work and resolve freshly.
    let ino2 = fs.create(root, "f").expect("recreate");
    assert_eq!(fs.lookup(root, "f"), Ok(ino2));
}

#[test]
fn rename_over_existing_destination_purges_the_victim() {
    let fs = fresh(256);
    let root = fs.root();
    let src = fs.create(root, "src").expect("create src");
    fs.write(src, 0, b"new").expect("write");
    let victim = fs.create(root, "dst").expect("create dst");
    fs.write(victim, 0, b"old").expect("write");
    assert_eq!(fs.lookup(root, "dst"), Ok(victim)); // cache the victim
    fs.rename(root, "src", root, "dst").expect("rename over dst");
    let now = fs.lookup(root, "dst").expect("dst resolves");
    let mut buf = [0u8; 3];
    assert_eq!(fs.read(now, 0, &mut buf).expect("read"), 3);
    assert_eq!(&buf, b"new", "dst must serve the renamed file, not the cached victim");
    assert_fsck_clean(&fs, "rename over destination");
}

#[test]
fn link_externalization_renumbers_without_stale_entries() {
    let mut fs = fresh(256);
    let root = fs.root();
    let ino = fs.create(root, "orig").expect("create");
    fs.write(ino, 0, b"shared").expect("write");
    assert_eq!(fs.lookup(root, "orig"), Ok(ino)); // cache pre-externalization ino
    FileSystem::link(&mut fs, ino, root, "alias").expect("link");
    // Embedding means the link externalized the inode and renumbered it:
    // both names must now resolve to the *same, live* ino.
    let a = fs.lookup(root, "orig").expect("orig resolves");
    let b = fs.lookup(root, "alias").expect("alias resolves");
    assert_eq!(a, b, "hardlinked names agree on the inode");
    assert_eq!(fs.getattr(a).expect("getattr").nlink, 2);
    let mut buf = [0u8; 6];
    assert_eq!(fs.read(a, 0, &mut buf).expect("read"), 6);
    assert_eq!(&buf, b"shared");
}

#[test]
fn directory_block_relocation_purges_rehomed_children() {
    let fs = fresh(1024);
    let root = fs.root();
    let dir = fs.mkdir(root, "hot").expect("mkdir");
    let mut inos = Vec::new();
    for i in 0..20 {
        inos.push(fs.create(dir, &format!("f{i}")).expect("create"));
    }
    // Cache every child, then move the directory's blocks into a fresh
    // group extent. Embedded inodes re-home with their block, so the
    // cached inos go stale — purge_dir in the commit path must drop them.
    for (i, &ino) in inos.iter().enumerate() {
        assert_eq!(fs.lookup(dir, &format!("f{i}")), Ok(ino));
    }
    let group = fs.carve_group_for(dir).expect("carve").expect("an extent exists");
    let moved = fs.relocate_block_into(dir, 0, group).expect("relocate dir block");
    assert!(moved.is_some(), "directory block actually moved");
    for i in 0..20 {
        let ino = fs.lookup(dir, &format!("f{i}")).expect("child resolves after relocation");
        fs.getattr(ino).unwrap_or_else(|e| {
            panic!("f{i}: cached ino went stale after dir-block relocation: {e:?}")
        });
    }
    assert_fsck_clean(&fs, "directory-block relocation");
}

#[test]
fn bounded_capacity_evicts_but_never_lies() {
    // Capacity far below the working set: every entry gets evicted and
    // re-faulted repeatedly; answers must stay correct throughout.
    let fs = fresh(64);
    let root = fs.root();
    let dir = fs.mkdir(root, "d").expect("mkdir");
    let mut inos = Vec::new();
    for i in 0..300 {
        inos.push(fs.create(dir, &format!("f{i}")).expect("create"));
    }
    for round in 0..3 {
        for (i, &ino) in inos.iter().enumerate() {
            assert_eq!(fs.lookup(dir, &format!("f{i}")), Ok(ino), "round {round} f{i}");
        }
    }
    assert!(ctr(&fs, Ctr::DcacheEvictions) > 0, "capacity pressure actually evicted");
    // A sequential scan over 300 names thrashes a 64-entry cache (every
    // probe misses), but an immediate re-probe of the just-faulted name
    // must hit.
    fs.lookup(dir, "f0").expect("fault f0 back in");
    let hits = ctr(&fs, Ctr::DcacheHits);
    assert_eq!(fs.lookup(dir, "f0"), Ok(inos[0]));
    assert_eq!(ctr(&fs, Ctr::DcacheHits), hits + 1, "re-probe served from cache");
    assert_eq!(fs.lookup(dir, "f999"), Err(FsError::NotFound));
    assert_fsck_clean(&fs, "eviction churn");
}

#[test]
fn drop_caches_clears_and_records_hit_rate() {
    let fs = fresh(256);
    let root = fs.root();
    let ino = fs.create(root, "f").expect("create");
    assert_eq!(fs.lookup(root, "f"), Ok(ino));
    let hits_before = ctr(&fs, Ctr::DcacheHits);
    fs.drop_caches().expect("drop");
    // First lookup after the cold boundary must miss (the cache is
    // empty), then re-fault and hit again.
    let miss_before = ctr(&fs, Ctr::DcacheMisses);
    let after = fs.lookup(root, "f").expect("resolves cold");
    assert_eq!(ctr(&fs, Ctr::DcacheMisses), miss_before + 1);
    fs.lookup(root, "f").expect("resolves warm");
    assert!(ctr(&fs, Ctr::DcacheHits) > hits_before);
    fs.getattr(after).expect("cold-resolved ino is live");
}

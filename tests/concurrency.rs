//! Concurrency: N client threads over one shared `Cffs`.
//!
//! The tentpole claims of the concurrent surface, checked end to end:
//!
//! * a multi-threaded run over disjoint per-thread directory sets leaves
//!   an fsck-clean image, and its op tally is exactly the sum of the
//!   equivalent single-threaded sessions (nothing lost, nothing doubled);
//! * threads hammering the *same* directories never corrupt entries or
//!   tear file contents;
//! * online relocation racing foreground writes preserves block-level
//!   atomicity — every block is wholly one writer's payload.

use cffs::core::{fsck, Cffs, CffsConfig, MkfsParams};
use cffs::prelude::FsResult;
use cffs::workloads::concurrent::{self, ConcurrentParams};
use cffs_disksim::models;
use cffs_disksim::Disk;
use cffs_fslib::ConcurrentFs;

fn fresh() -> Cffs {
    cffs::core::mkfs::mkfs(Disk::new(models::tiny_test_disk()), MkfsParams::tiny(), CffsConfig::cffs())
        .expect("mkfs")
}

fn assert_fsck_clean(fs: &Cffs, context: &str) {
    Cffs::sync(fs).expect("sync");
    let mut img = fs.crash_image();
    let report = fsck::fsck(&mut img, false).expect("fsck runs");
    assert!(report.clean(), "{context}: fsck found {:?}", report.errors);
}

#[test]
fn disjoint_cg_stress_is_fsck_clean_and_ops_sum_to_single_thread() {
    let p = ConcurrentParams {
        nthreads: 4,
        dirs_per_thread: 2,
        files_per_dir: 24,
        file_size: 4096,
        shared_dirs: 0,
        shared_files_per_thread: 0,
        read_rounds: 2,
        seed: 7,
    };
    let fs = fresh();
    let r = concurrent::run(&fs, &p).expect("concurrent run");
    assert_eq!(r.nthreads, 4);
    assert_fsck_clean(&fs, "4-thread disjoint stress");

    // The same four sessions, replayed one at a time on fresh instances:
    // thread t's session is seeded from `seed ^ t`, so a 1-thread run
    // with `seed ^ t` reproduces its op stream exactly.
    let mut sequential_total = 0u64;
    for t in 0..4u64 {
        let solo = ConcurrentParams { nthreads: 1, seed: p.seed ^ t, ..p };
        let sfs = fresh();
        let sr = concurrent::run(&sfs, &solo).expect("solo run");
        assert_fsck_clean(&sfs, "solo session");
        sequential_total += sr.total_ops();
    }
    assert_eq!(
        r.total_ops(),
        sequential_total,
        "4-thread op tally must equal the sum of its single-thread sessions"
    );
    assert!(r.per_thread_ops.iter().all(|&o| o > 0), "every thread did work");
}

#[test]
fn shared_directory_contention_keeps_entries_and_contents_intact() {
    let p = ConcurrentParams {
        nthreads: 4,
        dirs_per_thread: 1,
        files_per_dir: 4,
        file_size: 4096,
        shared_dirs: 2,
        shared_files_per_thread: 12,
        read_rounds: 1,
        seed: 99,
    };
    let fs = fresh();
    concurrent::run(&fs, &p).expect("contended run");
    assert_fsck_clean(&fs, "shared-directory contention");

    let root = Cffs::root(&fs);
    for s in 0..p.shared_dirs {
        let dir = Cffs::lookup(&fs, root, &format!("shared{s}")).expect("shared dir survives");
        let entries = Cffs::readdir(&fs, dir).expect("readdir");
        assert_eq!(
            entries.len(),
            p.nthreads * p.shared_files_per_thread,
            "shared{s}: every thread's files present exactly once"
        );
        // Every file reads back as its writer's fill byte, full length:
        // racing creates never cross-wired name → inode → data.
        let mut buf = vec![0u8; p.file_size];
        for t in 0..p.nthreads {
            for f in 0..p.shared_files_per_thread {
                let ino = Cffs::lookup(&fs, dir, &format!("t{t}_s{f}")).expect("entry resolves");
                let n = Cffs::read(&fs, ino, 0, &mut buf).expect("read");
                assert_eq!(n, p.file_size);
                assert!(
                    buf.iter().all(|&b| b == t as u8),
                    "shared{s}/t{t}_s{f}: content belongs to thread {t}"
                );
            }
        }
    }
}

#[test]
fn relocation_racing_foreground_writes_is_block_atomic() {
    const NFILES: usize = 6;
    const BLOCKS_PER_FILE: u64 = 3;
    const BLOCK: usize = 4096;

    let fs = fresh();
    let root = Cffs::root(&fs);
    let dir = Cffs::mkdir(&fs, root, "hot").expect("mkdir");
    let mut inos = Vec::new();
    for i in 0..NFILES {
        let ino = Cffs::create(&fs, dir, &format!("f{i}")).expect("create");
        for lbn in 0..BLOCKS_PER_FILE {
            // Fill byte 1: the pre-race generation.
            Cffs::write(&fs, ino, lbn * BLOCK as u64, &vec![1u8; BLOCK]).expect("write");
        }
        inos.push(ino);
    }
    Cffs::sync(&fs).expect("sync");

    // Writer thread: rewrites whole blocks with generation bytes 2..=9,
    // deterministic order. Relocator thread: carves fresh groups and
    // moves the same blocks, concurrently. The op-stripe lock must make
    // each write and each relocation atomic at block granularity.
    std::thread::scope(|scope| {
        let writer = {
            let inos = inos.clone();
            let fs = &fs;
            scope.spawn(move || -> FsResult<()> {
                for generation in 2u8..=9 {
                    for (i, &ino) in inos.iter().enumerate() {
                        let lbn = (i as u64 + generation as u64) % BLOCKS_PER_FILE;
                        Cffs::write(fs, ino, lbn * BLOCK as u64, &vec![generation; BLOCK])?;
                    }
                }
                Ok(())
            })
        };
        let relocator = {
            let inos = inos.clone();
            let fs = &fs;
            scope.spawn(move || -> FsResult<()> {
                for _round in 0..4 {
                    let Some(group) = fs.carve_group_for(dir)? else { break };
                    for &ino in &inos {
                        for lbn in 0..BLOCKS_PER_FILE {
                            fs.relocate_block_into(ino, lbn, group)?;
                        }
                    }
                }
                Ok(())
            })
        };
        writer.join().expect("writer panicked").expect("writer ops");
        relocator.join().expect("relocator panicked").expect("relocate ops");
    });

    assert_fsck_clean(&fs, "relocation vs foreground writes");
    // Block atomicity: every block is uniformly one generation byte —
    // a mixed block would mean a relocation copied half a write.
    let mut buf = vec![0u8; BLOCK];
    for &ino in &inos {
        for lbn in 0..BLOCKS_PER_FILE {
            let n = Cffs::read(&fs, ino, lbn * BLOCK as u64, &mut buf).expect("read");
            assert_eq!(n, BLOCK);
            let first = buf[0];
            assert!((1..=9).contains(&first), "generation byte in range");
            assert!(
                buf.iter().all(|&b| b == first),
                "ino {ino} lbn {lbn}: torn block (starts {first}, mixed)"
            );
        }
    }
}

#[test]
fn concurrent_trait_object_is_usable() {
    // The trait is meant for `&dyn ConcurrentFs` harness code.
    let fs = fresh();
    let dynfs: &dyn ConcurrentFs = &fs;
    let d = dynfs.mkdir(dynfs.root(), "x").unwrap();
    let ino = dynfs.create(d, "f").unwrap();
    dynfs.write(ino, 0, b"hello").unwrap();
    let mut buf = [0u8; 5];
    assert_eq!(dynfs.read(ino, 0, &mut buf).unwrap(), 5);
    assert_eq!(&buf, b"hello");
    dynfs.sync().unwrap();
}

#[test]
fn dcache_shared_directory_churn_stays_coherent() {
    // Same shared-directory hammering, but with the namespace cache on
    // and deliberately undersized (eviction churns while four threads
    // create, probe, unlink and recreate the same names). A stale
    // positive entry shows up as a wrong-content read, a stale negative
    // entry as a NotFound for a file that exists at the end.
    const NTHREADS: usize = 4;
    const FILES: usize = 24;
    const BLOCK: usize = 4096;
    let fs = cffs::core::mkfs::mkfs(
        Disk::new(models::tiny_test_disk()),
        MkfsParams::tiny(),
        CffsConfig::cffs().with_dcache(32),
    )
    .expect("mkfs");
    let root = Cffs::root(&fs);
    let dir = Cffs::mkdir(&fs, root, "shared").expect("mkdir");

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..NTHREADS)
            .map(|t| {
                let fs = &fs;
                scope.spawn(move || -> FsResult<()> {
                    for f in 0..FILES {
                        let ino = Cffs::create(fs, dir, &format!("t{t}_f{f}"))?;
                        Cffs::write(fs, ino, 0, &vec![t as u8; BLOCK])?;
                        // Probe every thread's copy of this slot: misses
                        // seed negative entries that racing creates must
                        // kill. A probed name can be unlinked between the
                        // lookup and the getattr, so a failure there is a
                        // legal race, not an error.
                        for other in 0..NTHREADS {
                            if let Ok(ino) = Cffs::lookup(fs, dir, &format!("t{other}_f{f}")) {
                                let _ = Cffs::getattr(fs, ino);
                            }
                        }
                        if f % 2 == 1 {
                            Cffs::unlink(fs, dir, &format!("t{t}_f{f}"))?;
                            let ino = Cffs::create(fs, dir, &format!("t{t}_f{f}"))?;
                            Cffs::write(fs, ino, 0, &vec![t as u8; BLOCK])?;
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker panicked").expect("worker ops");
        }
    });

    assert_fsck_clean(&fs, "dcache shared-directory churn");
    let entries = Cffs::readdir(&fs, dir).expect("readdir");
    assert_eq!(entries.len(), NTHREADS * FILES, "every name present exactly once");
    let mut buf = vec![0u8; BLOCK];
    for t in 0..NTHREADS {
        for f in 0..FILES {
            let ino = Cffs::lookup(&fs, dir, &format!("t{t}_f{f}")).expect("entry resolves");
            let n = Cffs::read(&fs, ino, 0, &mut buf).expect("read");
            assert_eq!(n, BLOCK);
            assert!(
                buf.iter().all(|&b| b == t as u8),
                "shared/t{t}_f{f}: content belongs to thread {t}"
            );
        }
    }
    let o = Cffs::obs(&fs);
    assert!(o.get(cffs_obs::Ctr::DcacheHits) > 0, "the cache was exercised");
    assert!(o.get(cffs_obs::Ctr::DcacheEvictions) > 0, "capacity pressure was real");
}

//! The regrouping engine must be invisible at the FileSystem interface:
//! a pass changes physical layout only. These tests pin the engine's
//! contract — logical equivalence, idempotence, budget and idle-only
//! semantics — over an adversarially aged image.

use cffs::core::{fsck, Cffs, CffsConfig};
use cffs::prelude::*;
use cffs_disksim::models;
use cffs_fslib::BLOCK_SIZE;
use cffs_regroup::{RegroupConfig, RegroupMode};
use cffs_workloads::aging::{age_adversarial, AdversarialParams};
use cffs_workloads::trace::snapshot;

fn aged() -> Cffs {
    let mut fs = cffs::build::on_disk(
        models::tiny_test_disk(),
        CffsConfig::cffs().with_mode(MetadataMode::Delayed),
    );
    age_adversarial(
        &mut fs,
        AdversarialParams { rounds: 2, storm_files: 60, ndirs: 4, seed: 42 },
        |_, _| Ok(()),
    )
    .expect("aging");
    fs.sync().expect("sync");
    fs
}

#[test]
fn regroup_preserves_logical_state_and_survives_remount() {
    let mut fs = aged();
    let want = snapshot(&mut fs).expect("snapshot");
    let out = cffs_regroup::run(&mut fs, &RegroupConfig::exhaustive()).expect("regroup");
    assert!(out.blocks_moved > 0, "an aged image must need regrouping");
    assert!(out.groups_formed > 0);
    assert_eq!(snapshot(&mut fs).expect("snapshot"), want, "live view changed");
    let mut img = fs.unmount().expect("unmount");
    let report = fsck::fsck(&mut img, false).expect("fsck");
    assert!(report.clean(), "{:?}", report.errors);
    let mut fs2 = Cffs::mount(img, CffsConfig::cffs()).expect("remount");
    assert_eq!(snapshot(&mut fs2).expect("snapshot"), want, "remounted view changed");
}

#[test]
fn regroup_is_idempotent() {
    let mut fs = aged();
    let first = cffs_regroup::run(&mut fs, &RegroupConfig::exhaustive()).expect("first pass");
    assert!(first.blocks_moved > 0);
    let second = cffs_regroup::run(&mut fs, &RegroupConfig::exhaustive()).expect("second pass");
    assert_eq!(second.blocks_moved, 0, "a regrouped image must score clean");
    assert_eq!(second.groups_formed, 0);
}

#[test]
fn fresh_layout_scores_clean() {
    // The allocator's own placement already meets the planner's ideal:
    // files created together in one directory need no regrouping.
    let mut fs = cffs::build::on_disk(models::tiny_test_disk(), CffsConfig::cffs());
    let root = fs.root();
    let dir = fs.mkdir(root, "d").unwrap();
    for i in 0..8 {
        let ino = fs.create(dir, &format!("f{i}")).unwrap();
        fs.write(ino, 0, &vec![i as u8; 3000]).unwrap();
    }
    fs.sync().unwrap();
    let plan = cffs_regroup::plan(&mut fs, &RegroupConfig::exhaustive()).expect("plan");
    assert_eq!(plan.total_blocks(), 0, "{}", plan.render());
}

#[test]
fn budget_caps_blocks_moved_and_resumes() {
    let mut fs = aged();
    let full = cffs_regroup::plan(&mut fs, &RegroupConfig::exhaustive()).expect("plan");
    assert!(full.total_blocks() > 10, "aged image too tame for a budget test");
    let capped = RegroupConfig { max_blocks: 5, mode: RegroupMode::Aggressive };
    let out = cffs_regroup::run(&mut fs, &capped).expect("capped pass");
    assert_eq!(out.blocks_moved, 5);
    assert!(out.budget_exhausted);
    // Later invocations resume where the budget stopped and finish the job.
    let mut total = out.blocks_moved;
    for _ in 0..200 {
        let next = cffs_regroup::run(&mut fs, &capped).expect("resumed pass");
        total += next.blocks_moved;
        if next.blocks_moved == 0 {
            break;
        }
    }
    let after = cffs_regroup::plan(&mut fs, &RegroupConfig::exhaustive()).expect("replan");
    assert_eq!(after.total_blocks(), 0, "budgeted passes must converge (moved {total})");
}

#[test]
fn idle_only_never_reads_cold_blocks() {
    let mut fs = aged();
    let idle = RegroupConfig { max_blocks: usize::MAX, mode: RegroupMode::IdleOnly };
    // Plan first: the namespace walk's directory reads are whole-group
    // fetches and may warm file blocks as a side effect. Dropping caches
    // *after* planning makes every source block cold, so an idle-only
    // execution of that plan must do nothing — it issues no source reads
    // of its own.
    let plan = cffs_regroup::plan(&mut fs, &idle).expect("plan");
    assert!(plan.total_blocks() > 0);
    fs.drop_caches().expect("drop");
    let out = cffs_regroup::execute(&mut fs, &plan, &idle).expect("idle pass");
    assert_eq!(out.blocks_moved, 0);
    assert_eq!(out.groups_formed, 0, "no extents may be carved for skipped work");
    assert!(out.skipped_cold > 0);
    // Warm one directory's files; now at least the resident blocks move.
    let dp = &plan.dirs[0];
    let mut warmed = 0;
    for mv in &dp.moves {
        let mut buf = vec![0u8; BLOCK_SIZE];
        let off = mv.lbn * BLOCK_SIZE as u64;
        fs.read(mv.ino, off, &mut buf).expect("warm read");
        warmed += 1;
    }
    let out2 = cffs_regroup::execute(&mut fs, &plan, &idle).expect("idle pass 2");
    assert!(out2.blocks_moved >= warmed, "resident blocks must be eligible");
}

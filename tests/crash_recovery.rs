//! Crash simulation and recovery.
//!
//! The synchronous-metadata discipline makes one promise: after a crash at
//! *any* point, fsck can repair the image to a consistent state, and no
//! name ever dangles (points at uninitialized or freed storage). The
//! embedded-inode variant strengthens it: a name and its inode are updated
//! atomically, so a crashed create either shows the complete file or
//! nothing.
//!
//! A "crash" here is [`Cffs::crash_image`] / [`Ffs::crash_image`]: the
//! disk exactly as the write history left it, with all delayed state
//! discarded.

use cffs::core::{fsck as cffs_fsck, Cffs, CffsConfig, MkfsParams};
use cffs::ffs::{fsck as ffs_fsck, Ffs, FfsOptions, MkfsParams as FfsMkfsParams};
use cffs::prelude::*;
use cffs_disksim::models;
use cffs_disksim::Disk;

fn cffs_fs(cfg: CffsConfig) -> Cffs {
    cffs::core::mkfs::mkfs(Disk::new(models::tiny_test_disk()), MkfsParams::tiny(), cfg)
        .expect("mkfs")
}

/// Run a create/write/delete churn, crash after every N ops, and verify
/// fsck repairs each crash image to a clean state.
#[test]
fn fsck_repairs_any_crash_point_cffs() {
    for cfg in [CffsConfig::cffs(), CffsConfig::conventional()] {
        let label = cfg.label.clone();
        let fs = cffs_fs(cfg);
        let root = fs.root();
        let dir = fs.mkdir(root, "work").unwrap();
        let mut images = Vec::new();
        for i in 0..40 {
            let name = format!("f{i}");
            let ino = fs.create(dir, &name).unwrap();
            fs.write(ino, 0, &vec![i as u8; 1500]).unwrap();
            if i % 3 == 0 && i > 0 {
                fs.unlink(dir, &format!("f{}", i - 1)).unwrap();
            }
            if i % 5 == 0 {
                images.push(fs.crash_image());
            }
        }
        for (k, mut img) in images.into_iter().enumerate() {
            let report = cffs_fsck::fsck(&mut img, true)
                .unwrap_or_else(|e| panic!("{label} crash {k}: repair failed: {e}"));
            let verify = cffs_fsck::fsck(&mut img, false).expect("verify");
            assert!(
                verify.clean(),
                "{label} crash {k} not clean after repair: {:?}",
                verify.errors
            );
            let _ = report;
            // The repaired image must mount and walk.
            let mut fs2 = Cffs::mount(img, CffsConfig::cffs()).expect("mount repaired");
            let _ = path::read_file(&mut fs2, "/work/f0").ok();
        }
    }
}

#[test]
fn fsck_repairs_any_crash_point_ffs() {
    let mut fs = cffs::ffs::mkfs::mkfs(
        Disk::new(models::tiny_test_disk()),
        FfsMkfsParams::tiny(),
        FfsOptions::default(),
    )
    .expect("mkfs");
    let root = fs.root();
    let dir = fs.mkdir(root, "work").unwrap();
    let mut images = Vec::new();
    for i in 0..40 {
        let ino = fs.create(dir, &format!("f{i}")).unwrap();
        fs.write(ino, 0, &vec![i as u8; 1500]).unwrap();
        if i % 4 == 1 {
            fs.unlink(dir, &format!("f{}", i - 1)).unwrap();
        }
        if i % 5 == 0 {
            images.push(fs.crash_image());
        }
    }
    for (k, mut img) in images.into_iter().enumerate() {
        ffs_fsck::fsck(&mut img, true).unwrap_or_else(|e| panic!("crash {k}: {e}"));
        assert!(ffs_fsck::fsck(&mut img, false).expect("verify").clean(), "crash {k}");
        let mut fs2 = Ffs::mount(img, FfsOptions::default()).expect("mount repaired");
        let _ = fs2.readdir(fs2.root()).expect("readdir after repair");
    }
}

/// The ordering promise: with synchronous metadata, a file whose create
/// *completed* (both ordered writes issued) survives any later crash that
/// loses delayed data — its name resolves and its inode is structurally
/// valid.
#[test]
fn completed_creates_survive_crashes() {
    let fs = cffs_fs(CffsConfig::cffs());
    let root = fs.root();
    let dir = fs.mkdir(root, "d").unwrap();
    for i in 0..10 {
        fs.create(dir, &format!("done{i}")).unwrap();
    }
    // Crash with data and bitmaps still delayed.
    let mut img = fs.crash_image();
    cffs_fsck::fsck(&mut img, true).expect("repair");
    let mut fs2 = Cffs::mount(img, CffsConfig::cffs()).expect("mount");
    let d = path::resolve(&mut fs2, "/d").expect("dir survives");
    let names = fs2.readdir(d).expect("readdir");
    assert_eq!(names.len(), 10, "all completed creates visible: {names:?}");
    for e in names {
        // Embedded atomicity: every visible name has a valid inode.
        let a = fs2.getattr(e.ino).expect("inode valid");
        assert_eq!(a.size, 0);
    }
}

/// Conventional ordering leaks inodes on a crash between the two writes
/// (never the reverse). Simulate by crashing right after creates whose
/// directory blocks are synced but whose *data* is not: fsck must only
/// ever *remove* dangling entries or *clear* orphans, and the repaired
/// image must never show a name without a valid inode.
#[test]
fn no_dangling_names_after_repair_all_variants() {
    for cfg in [
        CffsConfig::cffs(),
        CffsConfig::conventional(),
        CffsConfig::embedded_only(),
        CffsConfig::grouping_only(),
    ] {
        let label = cfg.label.clone();
        let fs = cffs_fs(cfg);
        let root = fs.root();
        let dir = fs.mkdir(root, "d").unwrap();
        for i in 0..25 {
            let ino = fs.create(dir, &format!("f{i}")).unwrap();
            fs.write(ino, 0, &vec![7u8; 3000]).unwrap();
        }
        // Rename churn to exercise the two-names window.
        for i in 0..10 {
            fs.rename(dir, &format!("f{i}"), dir, &format!("r{i}")).unwrap();
        }
        let mut img = fs.crash_image();
        cffs_fsck::fsck(&mut img, true).unwrap_or_else(|e| panic!("{label}: {e}"));
        let mut fs2 = Cffs::mount(img, CffsConfig::cffs()).expect("mount repaired");
        let d = match path::resolve(&mut fs2, "/d") {
            Ok(d) => d,
            Err(_) => continue, // whole directory lost: consistent, if sad
        };
        for e in fs2.readdir(d).expect("readdir") {
            fs2.getattr(e.ino)
                .unwrap_or_else(|err| panic!("{label}: dangling name {} ({err})", e.name));
        }
    }
}

/// Synced state is durable: after an explicit sync, a crash loses nothing.
#[test]
fn sync_makes_everything_durable() {
    let mut fs = cffs_fs(CffsConfig::cffs());
    path::mkdir_p(&mut fs, "/a/b").unwrap();
    path::write_file(&mut fs, "/a/b/file.txt", &vec![9u8; 10_000]).unwrap();
    fs.sync().unwrap();
    let mut img = fs.crash_image();
    let report = cffs_fsck::fsck(&mut img, false).expect("check");
    assert!(report.clean(), "synced image must be clean: {:?}", report.errors);
    let mut fs2 = Cffs::mount(img, CffsConfig::cffs()).expect("mount");
    let data = path::read_file(&mut fs2, "/a/b/file.txt").expect("file durable");
    assert_eq!(data, vec![9u8; 10_000]);
}

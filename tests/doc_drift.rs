//! Documentation drift guard for the observability glossary.
//!
//! The README's counter/histogram glossary is the contract users grep
//! when reading `BENCH_*.json` or `cffs-inspect` output, so it must stay
//! in lockstep with the code: every counter and histogram the stack can
//! emit appears in the README, and every glossary entry names something
//! that still exists.

use cffs_obs::feed::FRAME_FIELDS;
use cffs_obs::flight::{FLIGHT_FRAME_FIELDS, FLIGHT_RECORDS};
use cffs_obs::{Ctr, Histos};
use std::collections::BTreeSet;

fn readme() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md at the repo root")
}

/// Every backtick-quoted snake_case identifier in the README. Combined
/// glossary rows (`` `disk_reads` / `disk_writes` ``) fall out naturally
/// because each name carries its own backticks.
fn backticked_names(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for piece in text.split('`').skip(1).step_by(2) {
        let is_ident = !piece.is_empty()
            && piece.contains('_')
            && piece.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if is_ident {
            out.insert(piece.to_string());
        }
    }
    out
}

fn emittable_names() -> BTreeSet<String> {
    let mut names: BTreeSet<String> = Ctr::ALL.iter().map(|c| c.name().to_string()).collect();
    names.extend(Histos::names());
    names
}

/// Code → docs: every counter and histogram name is documented.
#[test]
fn every_counter_and_histogram_is_in_the_readme() {
    let text = readme();
    let documented = backticked_names(&text);
    let missing: Vec<_> =
        emittable_names().into_iter().filter(|n| !documented.contains(n)).collect();
    assert!(
        missing.is_empty(),
        "README.md glossary is missing these counter/histogram names: {missing:?}"
    );
}

/// Code → docs: every telemetry frame field is documented in the
/// README's feed table. (Frame fields need not contain `_`, so this
/// checks for the backticked name directly rather than reusing
/// `backticked_names`.)
#[test]
fn every_feed_frame_field_is_in_the_readme() {
    let text = readme();
    let missing: Vec<_> = FRAME_FIELDS
        .iter()
        .map(|(name, _)| *name)
        .filter(|name| !text.contains(&format!("`{name}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "README.md feed glossary is missing these frame fields: {missing:?}"
    );
}

/// Code → docs: every flight-recorder record type and frame field is
/// documented, so a `FLIGHT_*.jsonl` reader can always look a record up.
#[test]
fn every_flight_record_and_field_is_in_the_readme() {
    let text = readme();
    let missing: Vec<_> = FLIGHT_RECORDS
        .iter()
        .chain(FLIGHT_FRAME_FIELDS.iter())
        .map(|(name, _)| *name)
        .filter(|name| !text.contains(&format!("`{name}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "README.md flight glossary is missing these record/field names: {missing:?}"
    );
}

/// Docs → code: glossary tables only name counters/histograms that exist.
/// Scoped to the glossary sections so ordinary prose identifiers (env
/// vars, field names) don't trip it.
#[test]
fn readme_glossary_names_all_exist() {
    let text = readme();
    let mut known = emittable_names();
    // The feed frame-field table uses the same `| `name` | meaning |`
    // row shape; its names come from FRAME_FIELDS, not Ctr/Histos.
    known.extend(FRAME_FIELDS.iter().map(|(name, _)| name.to_string()));
    // Likewise the flight-recorder record and frame-field tables.
    known.extend(FLIGHT_RECORDS.iter().map(|(name, _)| name.to_string()));
    known.extend(FLIGHT_FRAME_FIELDS.iter().map(|(name, _)| name.to_string()));
    // Glossary rows are markdown table lines whose first cell is a
    // backticked name.
    let mut stale = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim_start().strip_prefix("| `") else { continue };
        // Only vet the leading cell (the name column); prose cells may
        // mention JSON fields like `p50_ns`.
        let Some(name) = rest.split('`').next() else { continue };
        if !known.contains(name) {
            stale.push((name.to_string(), line.trim().to_string()));
        }
    }
    assert!(
        stale.is_empty(),
        "README.md glossary names nothing in Ctr/Histos — stale rows: {stale:#?}"
    );
}

//! Determinism of the multi-client session driver on a volume set.
//!
//! Two contracts, one per thread regime:
//!
//! * **Single-threaded runs are byte-stable.** With `nthreads = 1` the
//!   whole simulated timeline is a pure function of the seed: two runs
//!   agree on every op count, every payload byte, the final simulated
//!   clock to the nanosecond, and the full namespace walk. This is the
//!   regime `cffs-inspect volumes` relies on for byte-identical output.
//!
//! * **Multi-threaded runs are count-stable.** With `nthreads > 1` the
//!   interleaving (and so the simulated clock) may differ run to run,
//!   but the seeded session streams themselves do not: per-thread op
//!   counts, session-window op counts, and total payload bytes must be
//!   identical, and a different seed must actually change the stream.

use cffs::core::CffsConfig;
use cffs::feedview::FeedView;
use cffs::obs::feed::{self, Cadence};
use cffs::volume::{VolumeCfg, VolumeSet};
use cffs::workloads::multiclient::{self, MulticlientParams};
use cffs_disksim::{models, Disk};
use cffs_fslib::ConcurrentFs;
use cffs_fslib::{FileKind, Ino};

fn set(nvols: usize) -> VolumeSet {
    let disks = (0..nvols).map(|_| Disk::new(models::tiny_test_disk())).collect();
    VolumeSet::format(disks, VolumeCfg::new(CffsConfig::cffs())).expect("format volume set")
}

fn params(nthreads: usize, seed: u64) -> MulticlientParams {
    MulticlientParams {
        nthreads,
        sessions: 40,
        ndirs: 8,
        files_per_dir: 4,
        ops_per_session: 6,
        seed,
        ..MulticlientParams::default()
    }
}

/// Flatten the namespace (names, kinds, sizes) resolved fresh from the
/// root — the logical end state a deterministic run must reproduce.
fn walk(fs: &VolumeSet, dir: Ino, prefix: &str, out: &mut Vec<String>) {
    let mut entries = fs.readdir(dir).expect("readdir");
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    for e in entries {
        let path = format!("{prefix}/{}", e.name);
        let attr = fs.getattr(e.ino).expect("getattr");
        out.push(format!("{path} {:?} {}", attr.kind, attr.size));
        if attr.kind == FileKind::Dir {
            walk(fs, e.ino, &path, out);
        }
    }
}

#[test]
fn single_threaded_run_is_byte_stable() {
    let run = |seed: u64| {
        let vs = set(2);
        let r = multiclient::run(&vs, &params(1, seed)).expect("multiclient");
        let mut ns = Vec::new();
        walk(&vs, vs.root(), "", &mut ns);
        (
            r.per_thread_ops.clone(),
            r.session_ops.clone(),
            r.bytes,
            r.elapsed.as_nanos(),
            vs.now().as_nanos(),
            vs.stripe_count(),
            ns,
        )
    };
    assert_eq!(run(42), run(42), "equal seeds must replay the same timeline");
    assert_ne!(run(42).4, run(43).4, "the seed must actually steer the stream");
}

/// One seeded single-threaded producer run with a manual-cadence tap
/// carrying the per-volume registries (the E16 telemetry shape): one
/// frame per phase barrier, each with a `volumes` row per spindle.
/// Returns the feed text.
fn feed_producer(tag: &str, seed: u64) -> String {
    let path =
        std::env::temp_dir().join(format!("cffs-voldet-{tag}-{}.jsonl", std::process::id()));
    let sink = feed::FeedSink::create(&path).expect("create feed");
    let vs = set(2);
    {
        let tap = feed::attach_with_volumes(
            &sink,
            &vs.set_obs(),
            &vs.vol_obs(),
            "multiclient",
            Cadence::Manual,
        );
        multiclient::run_with_phase_hook(&vs, &params(1, seed), |phase| tap.frame(phase))
            .expect("multiclient");
    }
    let text = std::fs::read_to_string(&path).expect("read feed");
    std::fs::remove_file(&path).ok();
    text
}

#[test]
fn single_threaded_feed_rendering_is_byte_deterministic() {
    let render = |text: &str| {
        let frames = feed::parse_feed(text).expect("every frame validates");
        assert!(!frames.is_empty());
        let mut view = FeedView::new(false);
        let mut out = String::new();
        for f in &frames {
            view.push(f);
            out.push_str(&view.render());
            out.push_str("---\n");
        }
        out
    };
    let (a, b) = (feed_producer("a", 42), feed_producer("b", 42));
    let (ra, rb) = (render(&a), render(&b));
    assert!(ra == rb, "same seed must render byte-identically");
    // The per-volume row set is present and shows real sharded work.
    assert!(ra.contains("volumes (2)"), "{ra}");
    assert!(ra.contains("vol0") && ra.contains("vol1"), "{ra}");
    assert!(render(&feed_producer("c", 43)) != ra, "different seeds must differ");
}

#[test]
fn multi_threaded_run_has_stable_counts() {
    let run = |seed: u64| {
        let vs = set(2);
        let r = multiclient::run(&vs, &params(4, seed)).expect("multiclient");
        (r.per_thread_ops.clone(), r.session_ops.clone(), r.bytes, vs.stripe_count())
    };
    // The clock is scheduling-dependent under real threads, but the op
    // and byte streams are seed-pure: counts must match exactly.
    assert_eq!(run(42), run(42), "equal seeds must produce identical counts");
    assert_ne!(run(42), run(43), "the seed must actually steer the stream");
}

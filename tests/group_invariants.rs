//! Explicit-grouping invariants, checked on live file systems after real
//! workloads:
//!
//! * a group's live-member bits exactly match the blocks its owner's files
//!   (and the owner directory itself) map;
//! * group extents never overlap and always lie inside one cylinder group;
//! * files larger than the group size own no grouped blocks (degrouping);
//! * dissolving, trimming and re-owning keep the index and the on-disk
//!   descriptors in agreement (verified through remount + fsck).

use cffs::core::{fsck, Cffs, CffsConfig, MkfsParams};
use cffs::prelude::*;
use cffs_disksim::models;
use cffs_disksim::Disk;
use std::collections::HashMap;

fn fresh() -> Cffs {
    cffs::core::mkfs::mkfs(
        Disk::new(models::tiny_test_disk()),
        MkfsParams::tiny(),
        CffsConfig::cffs(),
    )
    .expect("mkfs")
}

/// Map every block of every file to its inode by walking the namespace.
fn block_owners(fs: &mut Cffs) -> HashMap<u64, Ino> {
    let mut owners = HashMap::new();
    let mut stack = vec![fs.root()];
    while let Some(dir) = stack.pop() {
        // The directory's own blocks: readdir binds the logical
        // identities, then the cache answers where each block lives.
        let entries = fs.readdir(dir).expect("readdir");
        let attr = fs.getattr(dir).expect("getattr");
        for lbn in 0..(attr.size.div_ceil(4096)) {
            if let Some(blk) = fs.cache_block_of(dir, lbn) {
                owners.insert(blk, dir);
            }
        }
        for e in entries {
            match e.kind {
                FileKind::Dir => stack.push(e.ino),
                FileKind::File => {
                    let a = fs.getattr(e.ino).expect("getattr");
                    for lbn in 0..(a.size.div_ceil(4096)) {
                        if let Some(blk) = block_of(fs, e.ino, lbn) {
                            owners.insert(blk, e.ino);
                        }
                    }
                }
            }
        }
    }
    owners
}

/// Resolve (ino, lbn) -> physical block via a 1-byte read priming the
/// logical cache index (no public bmap; this stays at the public API).
fn block_of(fs: &mut Cffs, ino: Ino, lbn: u64) -> Option<u64> {
    let mut b = [0u8; 1];
    // A read at the block's offset binds the logical identity if mapped.
    let _ = fs.read(ino, lbn * 4096, &mut b).ok()?;
    fs.cache_block_of(ino, lbn)
}

#[test]
fn member_bits_match_reachable_blocks() {
    let mut fs = fresh();
    let root = fs.root();
    // Build several directories of small files with churn.
    for d in 0..6 {
        let dir = fs.mkdir(root, &format!("d{d}")).unwrap();
        for f in 0..30 {
            let ino = fs.create(dir, &format!("f{f}")).unwrap();
            fs.write(ino, 0, &vec![f as u8; 1024 + 512 * (f % 5)]).unwrap();
        }
        for f in (0..30).step_by(3) {
            fs.unlink(dir, &format!("f{f}")).unwrap();
        }
    }
    fs.sync().unwrap();
    let owners = block_owners(&mut fs);
    let sb = fs.superblock().clone();
    for g in fs.group_index().iter() {
        // Extent inside one cylinder group.
        assert_eq!(sb.block_cg(g.start), sb.block_cg(g.start + g.nslots as u64 - 1));
        for s in 0..g.nslots {
            let blk = g.slot_block(s);
            let live = g.member_valid & (1 << s) != 0;
            assert_eq!(
                owners.contains_key(&blk),
                live,
                "group {}/{} slot {s} (block {blk}): member bit vs reachability",
                g.cg,
                g.idx
            );
        }
    }
    // And the on-disk descriptors agree (fsck is the referee).
    let mut img = fs.unmount().unwrap();
    let report = fsck::fsck(&mut img, false).unwrap();
    assert!(report.clean(), "{:?}", report.errors);
}

#[test]
fn groups_never_overlap() {
    let fs = fresh();
    let root = fs.root();
    for d in 0..10 {
        let dir = fs.mkdir(root, &format!("dir{d}")).unwrap();
        for f in 0..20 {
            let ino = fs.create(dir, &format!("f{f}")).unwrap();
            fs.write(ino, 0, &vec![1u8; 2048]).unwrap();
        }
    }
    let mut extents: Vec<(u64, u64)> = fs
        .group_index()
        .iter()
        .map(|g| (g.start, g.start + g.nslots as u64))
        .collect();
    extents.sort();
    for w in extents.windows(2) {
        assert!(w[0].1 <= w[1].0, "groups overlap: {w:?}");
    }
}

#[test]
fn large_files_are_degrouped() {
    let mut fs = fresh();
    let root = fs.root();
    let dir = fs.mkdir(root, "d").unwrap();
    // Warm the group with small files.
    for f in 0..5 {
        let ino = fs.create(dir, &format!("small{f}")).unwrap();
        fs.write(ino, 0, &vec![2u8; 1024]).unwrap();
    }
    // Grow one file past the 64 KB group size.
    let big = fs.create(dir, "big").unwrap();
    fs.write(big, 0, &vec![3u8; 30_000]).unwrap(); // starts grouped
    fs.write(big, 30_000, &vec![4u8; 60_000]).unwrap(); // crosses the limit
    fs.sync().unwrap();
    let sb = fs.superblock().clone();
    let _ = sb;
    for lbn in 0..(90_000u64.div_ceil(4096)) {
        if let Some(blk) = block_of(&mut fs, big, lbn) {
            assert!(
                fs.group_index().group_of_block(&fs.superblock(), blk).is_none(),
                "block {blk} of the large file is still grouped"
            );
        }
    }
    // Contents intact after the relocation.
    let data = path::read_all(&mut fs, big).unwrap();
    assert_eq!(data.len(), 90_000);
    assert!(data[..30_000].iter().all(|&b| b == 3));
    assert!(data[30_000..].iter().all(|&b| b == 4));
    // Small files still grouped.
    let small = fs.lookup(dir, "small0").unwrap();
    let blk = block_of(&mut fs, small, 0).expect("mapped");
    assert!(fs.group_index().group_of_block(&fs.superblock(), blk).is_some());
}

#[test]
fn deleting_all_files_dissolves_groups() {
    let fs = fresh();
    let root = fs.root();
    let dir = fs.mkdir(root, "d").unwrap();
    for f in 0..20 {
        let ino = fs.create(dir, &format!("f{f}")).unwrap();
        fs.write(ino, 0, &vec![5u8; 4096]).unwrap();
    }
    let groups_before = fs.group_index().len();
    assert!(groups_before > 0);
    for f in 0..20 {
        fs.unlink(dir, &format!("f{f}")).unwrap();
    }
    fs.rmdir(root, "d").unwrap();
    fs.sync().unwrap();
    // Only the root's own directory block may keep a group alive.
    for g in fs.group_index().iter() {
        assert_eq!(g.owner, root, "stray group owned by {:#x}", g.owner);
    }
    assert!(fs.group_index().len() <= 1, "at most the root's group remains");
    let mut img = fs.unmount().unwrap();
    assert!(fsck::fsck(&mut img, false).unwrap().clean());
}

#[test]
fn group_hint_colocates_files() {
    let mut fs = fresh();
    let root = fs.root();
    let dir = fs.mkdir(root, "site").unwrap();
    // Create the files with grouping *bypassed* (large-ish writes spread
    // them), then hint.
    let mut inos = Vec::new();
    for f in 0..4 {
        let ino = fs.create(dir, &format!("asset{f}")).unwrap();
        fs.write(ino, 0, &vec![f as u8; 3000]).unwrap();
        inos.push(ino);
    }
    fs.group_hint(dir, &["asset0", "asset1", "asset2", "asset3"]).unwrap();
    fs.sync().unwrap();
    // All assets' blocks now live in groups owned by `dir`.
    for (f, &ino) in inos.iter().enumerate() {
        let blk = block_of(&mut fs, ino, 0).expect("mapped");
        let g = *fs
            .group_index()
            .group_of_block(&fs.superblock(), blk)
            .unwrap_or_else(|| panic!("asset{f} not grouped"));
        assert_eq!(g.owner, dir);
    }
    // Contents survived the relocation.
    for (f, &ino) in inos.iter().enumerate() {
        let data = path::read_all(&mut fs, ino).unwrap();
        assert_eq!(data, vec![f as u8; 3000]);
    }
    let mut img = fs.unmount().unwrap();
    assert!(fsck::fsck(&mut img, false).unwrap().clean());
}

#[test]
fn statfs_slack_accounting() {
    let fs = fresh();
    let root = fs.root();
    let dir = fs.mkdir(root, "d").unwrap();
    let st0 = fs.statfs().unwrap();
    // One small file carves a 16-block group for `d` holding 2 live blocks
    // (d's directory block + the file's data block): 14 new slack, the
    // whole extent gone from the free count.
    let ino = fs.create(dir, "f").unwrap();
    fs.write(ino, 0, b"x").unwrap();
    let st1 = fs.statfs().unwrap();
    assert_eq!(
        st1.group_slack_blocks - st0.group_slack_blocks,
        14,
        "16-block extent minus dir block and file block"
    );
    assert_eq!(st0.free_blocks - st1.free_blocks, 16, "whole extent reserved");
}

#[test]
fn dir_block_relocation_reowns_embedded_child_groups() {
    // `child` is embedded in `parent`'s directory block, so relocating
    // that block renumbers child's ino. Any group carved for child must
    // follow the renumbering — a descriptor still naming the old ino is
    // an orphan fsck would dissolve.
    let fs = fresh();
    let root = fs.root();
    let parent = fs.mkdir(root, "parent").unwrap();
    let child = fs.mkdir(parent, "child").unwrap();
    let ino = fs.create(child, "f").unwrap();
    fs.write(ino, 0, b"x").unwrap();
    assert!(!fs.group_index().groups_of(child).is_empty(), "child owns a group");

    let group = fs.carve_group_for(parent).unwrap().expect("extent for parent");
    assert!(fs.relocate_block_into(parent, 0, group).unwrap().is_some(), "block moved");

    let child_now = fs.lookup(parent, "child").unwrap();
    assert_ne!(child_now, child, "relocation renumbered the embedded child dir");
    assert!(fs.group_index().groups_of(child).is_empty(), "old ino owns nothing");
    assert!(
        !fs.group_index().groups_of(child_now).is_empty(),
        "ownership transferred to the new ino"
    );
    assert_eq!(fs.lookup(child_now, "f").map(|i| fs.getattr(i).unwrap().size), Ok(1));

    fs.sync().unwrap();
    let mut img = fs.crash_image();
    let report = fsck::fsck(&mut img, false).unwrap();
    assert!(report.clean(), "{:?}", report.errors);
}

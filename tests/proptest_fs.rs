//! Property-based integration tests.
//!
//! Unlike `tests/equivalence.rs` (fixed seeds), these let proptest explore
//! and *shrink* operation sequences, which is how the nastiest corner
//! cases (rename-over-hardlink, truncate-then-append across indirect
//! boundaries, group dissolution races) were found during development.

use cffs::core::{fsck, Cffs, CffsConfig, MkfsParams};
use cffs::ffs::{Ffs, FfsOptions, MkfsParams as FfsMkfsParams};
use cffs::prelude::*;
use cffs_disksim::models;
use cffs_disksim::Disk;
use cffs_fslib::model::ModelFs;
use cffs_workloads::trace::{apply, snapshot, Op};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    (0usize..6).prop_map(|i| format!("n{i}"))
}

fn arb_path() -> impl Strategy<Value = String> {
    (prop::sample::select(vec!["", "/d0", "/d1", "/d0/s0"]), arb_name())
        .prop_map(|(d, n)| format!("{d}/{n}"))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (arb_path(), 0usize..60_000, any::<u8>())
            .prop_map(|(path, len, byte)| Op::Write { path, data: vec![byte; len] }),
        2 => (arb_path(), 1usize..10_000, any::<u8>())
            .prop_map(|(path, len, byte)| Op::Append { path, data: vec![byte; len] }),
        2 => (arb_path(), 0u64..70_000).prop_map(|(path, size)| Op::Truncate { path, size }),
        2 => arb_path().prop_map(|path| Op::Unlink { path }),
        2 => (arb_path(), arb_path()).prop_map(|(from, to)| Op::Rename { from, to }),
        1 => (arb_path(), arb_path()).prop_map(|(target, name)| Op::Link { target, name }),
        1 => prop::sample::select(vec!["/sub0", "/sub1", "/d0/sub0"])
            .prop_map(|p| Op::Mkdir { path: p.to_string() }),
        1 => prop::sample::select(vec!["/sub0", "/sub1", "/d0/sub0"])
            .prop_map(|p| Op::Rmdir { path: p.to_string() }),
    ]
}

fn skeleton() -> Vec<Op> {
    ["/d0", "/d1", "/d0/s0"]
        .iter()
        .map(|p| Op::Mkdir { path: p.to_string() })
        .collect()
}

fn cffs_variant(cfg: CffsConfig) -> Cffs {
    cffs::core::mkfs::mkfs(Disk::new(models::tiny_test_disk()), MkfsParams::tiny(), cfg)
        .expect("mkfs")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every variant ends in the oracle's logical state.
    #[test]
    fn cffs_matches_oracle(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut oracle = ModelFs::new();
        for op in skeleton().iter().chain(&ops) {
            apply(&mut oracle, op).expect("oracle");
        }
        let want = snapshot(&mut oracle).expect("oracle snapshot");
        for cfg in [CffsConfig::cffs(), CffsConfig::conventional()] {
            let label = cfg.label.clone();
            let mut fs = cffs_variant(cfg);
            for op in skeleton().iter().chain(&ops) {
                apply(&mut fs, op).expect("replay");
            }
            let got = snapshot(&mut fs).expect("snapshot");
            prop_assert_eq!(&got, &want, "{} diverged", label);
        }
    }

    /// Classic FFS too.
    #[test]
    fn ffs_matches_oracle(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut oracle = ModelFs::new();
        for op in skeleton().iter().chain(&ops) {
            apply(&mut oracle, op).expect("oracle");
        }
        let want = snapshot(&mut oracle).expect("oracle snapshot");
        let mut fs = Ffs::mount(
            cffs::ffs::mkfs::mkfs(
                Disk::new(models::tiny_test_disk()),
                FfsMkfsParams::tiny(),
                FfsOptions::default(),
            )
            .expect("mkfs")
            .unmount()
            .expect("unmount"),
            FfsOptions::default(),
        )
        .expect("remount");
        for op in skeleton().iter().chain(&ops) {
            apply(&mut fs, op).expect("replay");
        }
        prop_assert_eq!(snapshot(&mut fs).expect("snapshot"), want);
    }

    /// Any crash point during any workload leaves a repairable image, and
    /// the repaired image contains a *subset* of the oracle's files with
    /// correct-or-absent contents (the ordering discipline's guarantee:
    /// fsck may discard unfinished work, never corrupt finished work that
    /// was synced).
    #[test]
    fn crash_anywhere_is_repairable(
        ops in prop::collection::vec(arb_op(), 1..40),
        crash_after in 0usize..40,
        torn_keep in 0usize..9,
    ) {
        let mut fs = cffs_variant(CffsConfig::cffs());
        for op in skeleton().iter().chain(ops.iter().take(crash_after)) {
            apply(&mut fs, op).expect("replay");
        }
        let img = if torn_keep < 8 {
            fs.crash_image_torn(torn_keep)
        } else {
            Some(fs.crash_image())
        };
        let Some(mut img) = img else { return Ok(()) };
        fsck::fsck(&mut img, true).expect("repair");
        let verify = fsck::fsck(&mut img, false).expect("verify");
        prop_assert!(verify.clean(), "not clean after repair: {:?}", verify.errors);
        // The repaired image must mount and be fully walkable.
        let mut fs2 = Cffs::mount(img, CffsConfig::cffs()).expect("mount");
        snapshot(&mut fs2).expect("walk repaired image");
    }

    /// Remount is lossless for synced state under arbitrary op sequences.
    #[test]
    fn remount_round_trip(ops in prop::collection::vec(arb_op(), 1..40)) {
        let mut fs = cffs_variant(CffsConfig::cffs());
        for op in skeleton().iter().chain(&ops) {
            apply(&mut fs, op).expect("replay");
        }
        let want = snapshot(&mut fs).expect("pre-unmount snapshot");
        let disk = fs.unmount().expect("unmount");
        let mut fs2 = Cffs::mount(disk, CffsConfig::cffs()).expect("remount");
        prop_assert_eq!(snapshot(&mut fs2).expect("post-remount snapshot"), want);
    }

    /// The namespace cache is invisible to semantics: a dcache'd instance
    /// (capacity 64, small enough that eviction churns constantly) agrees
    /// with a plain one on every path-resolution outcome and on the final
    /// logical state, across arbitrary create/rename/unlink/link/mkdir
    /// interleavings *and* a directory-block relocation pass (which
    /// renumbers the embedded inodes the cache has handed out).
    #[test]
    fn dcache_on_matches_dcache_off(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut on = cffs_variant(CffsConfig::cffs().with_dcache(64));
        let mut off = cffs_variant(CffsConfig::cffs());
        for op in skeleton().iter().chain(&ops) {
            apply(&mut on, op).expect("dcache replay");
            apply(&mut off, op).expect("plain replay");
            // Probe every path the generator can produce: a stale
            // positive entry shows up as Ok-vs-Err or wrong contents, a
            // stale negative entry as Err-vs-Ok.
            for dir in ["", "/d0", "/d1", "/d0/s0", "/sub0", "/sub1", "/d0/sub0"] {
                for i in 0..6 {
                    let path = format!("{dir}/n{i}");
                    let a = cffs_fslib::path::resolve(&mut on, &path).map(|_| ());
                    let b = cffs_fslib::path::resolve(&mut off, &path).map(|_| ());
                    prop_assert_eq!(a, b, "resolve {} diverged after {:?}", path, op);
                }
            }
        }
        // Relocate /d0's first blocks into a fresh extent on both
        // instances: the commit path re-homes embedded inodes, so any
        // cached ino for /d0's children is now a lie unless purged.
        if let Ok(d0) = cffs_fslib::path::resolve(&mut on, "/d0") {
            if let Some(group) = on.carve_group_for(d0).expect("carve") {
                for lbn in 0..4 {
                    on.relocate_block_into(d0, lbn, group).expect("relocate");
                }
            }
        }
        if let Ok(d0) = cffs_fslib::path::resolve(&mut off, "/d0") {
            if let Some(group) = off.carve_group_for(d0).expect("carve") {
                for lbn in 0..4 {
                    off.relocate_block_into(d0, lbn, group).expect("relocate");
                }
            }
        }
        prop_assert_eq!(
            snapshot(&mut on).expect("dcache snapshot"),
            snapshot(&mut off).expect("plain snapshot"),
            "logical state diverged"
        );
        Cffs::sync(&on).expect("sync");
        let mut img = on.crash_image();
        let verify = fsck::fsck(&mut img, false).expect("fsck");
        prop_assert!(verify.clean(), "dcache instance not fsck-clean: {:?}", verify.errors);
    }

    /// Group accounting stays exact under churn: reserved = live + slack,
    /// and statfs never double-counts.
    #[test]
    fn space_accounting_balances(ops in prop::collection::vec(arb_op(), 1..50)) {
        let mut fs = cffs_variant(CffsConfig::cffs());
        let total_free_at_start = fs.statfs().expect("statfs").free_blocks;
        for op in skeleton().iter().chain(&ops) {
            apply(&mut fs, op).expect("replay");
        }
        let st = fs.statfs().expect("statfs");
        let slack: u64 = fs.group_index().total_slack();
        prop_assert_eq!(st.group_slack_blocks, slack);
        prop_assert!(st.free_blocks + st.group_slack_blocks <= total_free_at_start);
        // Deleting everything returns all space.
        for p in ["/sub0", "/sub1"] {
            let _ = cffs_fslib::path::remove_tree(&mut fs, p);
        }
        for e in fs.readdir(fs.root()).expect("readdir") {
            match e.kind {
                FileKind::Dir => cffs_fslib::path::remove_tree(
                    &mut fs,
                    &format!("/{}", e.name),
                )
                .expect("remove tree"),
                FileKind::File => fs.unlink(fs.root(), &e.name).map(|_| ()).expect("unlink"),
            }
        }
        let st = fs.statfs().expect("statfs");
        // Only the root's own directory block (if any) may remain reserved.
        prop_assert!(
            st.free_blocks + st.group_slack_blocks + 16 >= total_free_at_start,
            "space leaked: {} + {} vs {}",
            st.free_blocks, st.group_slack_blocks, total_free_at_start
        );
    }
}

//! Rendering for the live telemetry feed — the engine behind `cffs-top`.
//!
//! A [`FeedView`] consumes feed frames (see `cffs_obs::feed`) one at a
//! time and renders a terminal dashboard: a per-cylinder-group heatmap,
//! sparklines of the headline signals, the recent `signal.*` /
//! `regroup.*` event log, per-thread op counters, and — when the
//! producer is a volume set — one row per volume with an ops-share bar.
//!
//! The renderer is deliberately deterministic in headless (no-color)
//! mode: it never prints host-time counters (`lock_wait_ns_*` stay in
//! the frames but are skipped here), so rendering a seeded run's feed is
//! byte-identical across machines — which is what `tests/feed.rs` and
//! the ci.sh smoke assert.

use cffs_obs::json::Json;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Sparkline history window (points retained per series).
const SPARK_WINDOW: usize = 48;

/// Event-log window (most recent events retained).
const EVENT_WINDOW: usize = 10;

/// Heatmap cells per row.
const HEAT_COLS: usize = 64;

/// Occupancy ramp, indexed by rounded tenths of fullness.
const RAMP: [char; 11] = [' ', '.', ':', '-', '=', '+', 'x', 'o', '*', '#', '@'];

/// Render `vals` (oldest first) as a unicode block-bar sparkline scaled
/// to the series' own min/max. Empty input renders as an empty string.
pub fn sparkline(vals: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if vals.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in vals {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = if hi > lo { hi - lo } else { 1.0 };
    vals.iter()
        .map(|&v| {
            let t = ((v - lo) / span * 7.0).round() as usize;
            BARS[t.min(7)]
        })
        .collect()
}

/// One rolling sparkline series with a label and a value formatter.
struct Track {
    label: &'static str,
    vals: VecDeque<f64>,
}

impl Track {
    fn new(label: &'static str) -> Track {
        Track { label, vals: VecDeque::new() }
    }

    fn push(&mut self, v: f64) {
        if self.vals.len() == SPARK_WINDOW {
            self.vals.pop_front();
        }
        self.vals.push_back(v);
    }

    fn line(&self) -> String {
        let vals: Vec<f64> = self.vals.iter().copied().collect();
        let last = vals.last().copied().unwrap_or(0.0);
        format!("{:<26} {:>10.2}  {}", self.label, last, sparkline(&vals))
    }
}

/// A recent signal/regroup event, as carried in a frame.
struct LoggedEvent {
    t_ns: u64,
    tag: String,
    a: u64,
    b: u64,
}

/// Streaming dashboard state: push frames in, render text out.
pub struct FeedView {
    /// Emit ANSI colors / screen clears. Off ⇒ plain deterministic text.
    color: bool,
    frames_seen: u64,
    /// Latest frame (rendering is state-of-now plus the rolling windows).
    last: Option<Json>,
    util_track: Track,
    queue_track: Track,
    dirty_track: Track,
    ops_track: Track,
    events: VecDeque<LoggedEvent>,
    /// Cumulative ops per thread slot (frames carry deltas).
    thread_totals: Vec<u64>,
    prev_t_ns: Option<u64>,
}

impl FeedView {
    /// A fresh view. `color` enables ANSI styling; keep it off for
    /// deterministic (headless / CI) output.
    pub fn new(color: bool) -> FeedView {
        FeedView {
            color,
            frames_seen: 0,
            last: None,
            util_track: Track::new("group_fetch_util_ewma"),
            queue_track: Track::new("driver_queue_depth_ewma"),
            dirty_track: Track::new("cache_dirty_backlog_ewma"),
            ops_track: Track::new("ops_per_sim_sec"),
            events: VecDeque::new(),
            thread_totals: Vec::new(),
            prev_t_ns: None,
        }
    }

    /// Frames consumed so far.
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// Fold one (already validated) frame into the rolling state.
    pub fn push(&mut self, frame: &Json) {
        self.frames_seen += 1;
        let sig_milli = |name: &str| -> f64 {
            frame
                .get("signals")
                .and_then(|s| s.get(name))
                .and_then(|s| s.get("ewma_milli"))
                .and_then(Json::as_u64)
                .unwrap_or(0) as f64
                / 1000.0
        };
        self.util_track.push(sig_milli("group_fetch_util_ewma"));
        self.queue_track.push(sig_milli("driver_queue_depth_ewma"));
        self.dirty_track.push(sig_milli("cache_dirty_backlog_ewma"));
        let ops = frame.get("ops").and_then(Json::as_u64).unwrap_or(0);
        let t_ns = frame.get("t_ns").and_then(Json::as_u64).unwrap_or(0);
        let dt_ns = self.prev_t_ns.map_or(0, |p| t_ns.saturating_sub(p));
        // Ops per *simulated* second — both numerator and denominator are
        // deterministic. A zero-width frame reports the raw op count.
        let rate = if dt_ns > 0 { ops as f64 * 1e9 / dt_ns as f64 } else { ops as f64 };
        self.ops_track.push(rate);
        self.prev_t_ns = Some(t_ns);
        if let Some(Json::Arr(evs)) = frame.get("events") {
            for e in evs {
                if self.events.len() == EVENT_WINDOW {
                    self.events.pop_front();
                }
                self.events.push_back(LoggedEvent {
                    t_ns: e.get("t_ns").and_then(Json::as_u64).unwrap_or(0),
                    tag: e.get("tag").and_then(Json::as_str).unwrap_or("?").to_string(),
                    a: e.get("a").and_then(Json::as_u64).unwrap_or(0),
                    b: e.get("b").and_then(Json::as_u64).unwrap_or(0),
                });
            }
        }
        if let Some(Json::Arr(threads)) = frame.get("threads") {
            if self.thread_totals.len() < threads.len() {
                self.thread_totals.resize(threads.len(), 0);
            }
            for (i, t) in threads.iter().enumerate() {
                self.thread_totals[i] += t.as_u64().unwrap_or(0);
            }
        }
        self.last = Some(frame.clone());
    }

    /// Color a heatmap cell by its utilization EWMA (green high, yellow
    /// middling, red low). Identity when color is off.
    fn paint(&self, cell: char, util_milli: u64, sampled: bool) -> String {
        if !self.color || !sampled {
            return cell.to_string();
        }
        let code = if util_milli >= 70_000 {
            32 // green: group fetches paying off
        } else if util_milli >= 40_000 {
            33 // yellow
        } else {
            31 // red: fetched blocks going unused
        };
        format!("\x1b[{code}m{cell}\x1b[0m")
    }

    /// Render the dashboard for the most recent frame. Returns an empty
    /// string before the first [`push`](FeedView::push).
    pub fn render(&self) -> String {
        let Some(frame) = &self.last else {
            return String::new();
        };
        let mut out = String::new();
        let seq = frame.get("seq").and_then(Json::as_u64).unwrap_or(0);
        let stage = frame.get("stage").and_then(Json::as_str).unwrap_or("?");
        let t_ns = frame.get("t_ns").and_then(Json::as_u64).unwrap_or(0);
        let qd = frame.get("queue_depth").and_then(Json::as_u64).unwrap_or(0);
        let ops = frame.get("ops").and_then(Json::as_u64).unwrap_or(0);
        // Absent in feeds cut before the SLO registry existed: render 0.
        let slo_burn = frame.get("slo_burn_milli").and_then(Json::as_u64).unwrap_or(0);
        let bold = |s: &str| {
            if self.color {
                format!("\x1b[1m{s}\x1b[0m")
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{} seq={seq} stage={stage} t={:.3}s ops={ops} queue_depth={qd} slo_burn={slo_burn}m",
            bold("cffs-top"),
            t_ns as f64 / 1e9,
        );

        // Curated counter deltas. lock_wait_ns_* counters are host-time
        // and nondeterministic: present in the frames, never rendered.
        if let Some(Json::Obj(counters)) = frame.get("counters") {
            let shown: Vec<String> = counters
                .iter()
                .filter(|(k, _)| !k.starts_with("lock_wait_ns"))
                .map(|(k, v)| format!("{k}={}", v.as_u64().unwrap_or(0)))
                .collect();
            let _ = writeln!(out, "  {}", shown.join(" "));
        }

        let _ = writeln!(out, "{}", bold("signals"));
        for t in [&self.util_track, &self.queue_track, &self.dirty_track, &self.ops_track] {
            let _ = writeln!(out, "  {}", t.line());
        }

        // Per-CG heatmap: occupancy picks the ramp glyph, utilization
        // EWMA picks the color (legend below the grid).
        if let Some(Json::Arr(cgs)) = frame.get("cgs") {
            if !cgs.is_empty() {
                let _ = writeln!(
                    out,
                    "{} ({} groups; glyph {}..{} = empty..full; color = fetch util)",
                    bold("cg heatmap"),
                    cgs.len(),
                    RAMP[0],
                    RAMP[10],
                );
                let mut row = String::from("  ");
                for (i, c) in cgs.iter().enumerate() {
                    let used = c.get("used").and_then(Json::as_u64).unwrap_or(0);
                    let cap = c.get("data_blocks").and_then(Json::as_u64).unwrap_or(0).max(1);
                    let tenth = (used * 10 + cap / 2) / cap;
                    let util = c.get("util_ewma_milli").and_then(Json::as_u64).unwrap_or(0);
                    let sampled =
                        c.get("util_samples").and_then(Json::as_u64).unwrap_or(0) > 0;
                    row.push_str(&self.paint(RAMP[(tenth as usize).min(10)], util, sampled));
                    if (i + 1) % HEAT_COLS == 0 {
                        let _ = writeln!(out, "{row}");
                        row = String::from("  ");
                    }
                }
                if row.len() > 2 {
                    let _ = writeln!(out, "{row}");
                }
                // The busiest groups this frame, with their numbers.
                let mut hot: Vec<(u64, u64, u64, u64)> = cgs
                    .iter()
                    .map(|c| {
                        let ios = c.get("dread_ios").and_then(Json::as_u64).unwrap_or(0)
                            + c.get("dwrite_ios").and_then(Json::as_u64).unwrap_or(0);
                        (
                            ios,
                            c.get("cg").and_then(Json::as_u64).unwrap_or(0),
                            c.get("used").and_then(Json::as_u64).unwrap_or(0),
                            c.get("util_ewma_milli").and_then(Json::as_u64).unwrap_or(0),
                        )
                    })
                    .filter(|&(ios, ..)| ios > 0)
                    .collect();
                hot.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
                if !hot.is_empty() {
                    let top: Vec<String> = hot
                        .iter()
                        .take(4)
                        .map(|&(ios, cg, used, util)| {
                            format!("cg{cg}: {ios} ios used={used} util={:.1}%", util as f64 / 1000.0)
                        })
                        .collect();
                    let _ = writeln!(out, "  hot: {}", top.join(" | "));
                }
            }
        }

        // Per-volume rows (volume-set producers only; single-volume
        // feeds carry an empty array). The bar is each volume's share of
        // the frame's busiest volume — a shard-balance read at a glance.
        if let Some(Json::Arr(vols)) = frame.get("volumes") {
            if !vols.is_empty() {
                let _ = writeln!(out, "{} ({})", bold("volumes"), vols.len());
                let max_ops = vols
                    .iter()
                    .filter_map(|v| v.get("ops").and_then(Json::as_u64))
                    .max()
                    .unwrap_or(0)
                    .max(1);
                for v in vols {
                    let get = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
                    let ops = get("ops");
                    let bar = "#".repeat(((ops * 16 + max_ops / 2) / max_ops) as usize);
                    let _ = writeln!(
                        out,
                        "  vol{:<2} ops={ops:<8} qd={:<4} dr={:<6} dw={:<6} gf-util={:>5.1}%  {bar}",
                        get("vol"),
                        get("queue_depth"),
                        get("dreads"),
                        get("dwrites"),
                        get("gf_util_ewma_milli") as f64 / 1000.0,
                    );
                }
            }
        }

        // Per-thread cumulative ops (slot 0 = unbound threads).
        let active: Vec<String> = self
            .thread_totals
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| format!("t{i}:{n}"))
            .collect();
        if !active.is_empty() {
            let _ = writeln!(out, "{} {}", bold("threads"), active.join(" "));
        }

        if !self.events.is_empty() {
            let _ = writeln!(out, "{}", bold("events"));
            for e in &self.events {
                let _ = writeln!(
                    out,
                    "  [{:>10.3}s] {} a={} b={}",
                    e.t_ns as f64 / 1e9,
                    e.tag,
                    e.a,
                    e.b
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_extremes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0]), "▁");
        let s = sparkline(&[0.0, 5.0, 10.0]);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
    }

    #[test]
    fn view_renders_pushed_frame() {
        let line = r#"{"seq":0,"stage":"warm","t_ns":1000,"counters":{"disk_requests":5,"lock_wait_ns_alloc":99},"ops":2,"queue_depth":1,"histos":{},"signals":{"group_fetch_util_ewma":{"ewma_milli":77000,"samples":3,"low":false,"high":false,"floor_milli":null,"ceiling_milli":null,"low_count":0,"high_count":0}},"cgs":[{"cg":0,"data_blocks":100,"used":50,"util_ewma_milli":77000,"util_samples":3,"dread_ios":4,"dwrite_ios":0,"dread_sectors":32,"dwrite_sectors":0}],"threads":[2,0],"events":[{"t_ns":900,"tag":"signal.group_fetch_util.low","a":48,"b":0}]}"#;
        let frame = cffs_obs::json::parse(line).unwrap();
        let mut view = FeedView::new(false);
        assert_eq!(view.render(), "");
        view.push(&frame);
        let text = view.render();
        assert!(text.contains("stage=warm"), "{text}");
        assert!(text.contains("disk_requests=5"), "{text}");
        assert!(!text.contains("lock_wait"), "host-time counters must not render: {text}");
        assert!(text.contains("signal.group_fetch_util.low"), "{text}");
        assert!(text.contains("cg heatmap"), "{text}");
        assert!(text.contains("t0:2"), "{text}");
        assert!(!text.contains('\x1b'), "headless must be ANSI-free: {text}");
        // Single-volume feed: empty volumes array must render no section.
        assert!(!text.contains("volumes"), "{text}");
        // A pre-SLO frame (no slo_burn_milli field) renders burn 0.
        assert!(text.contains("slo_burn=0m"), "{text}");
    }

    #[test]
    fn view_renders_slo_burn() {
        let line = r#"{"seq":3,"stage":"churn","t_ns":2000,"counters":{},"ops":9,"queue_depth":0,"histos":{},"signals":{},"cgs":[],"threads":[],"events":[],"dcache_hit_milli":0,"slo_burn_milli":1500,"volumes":[]}"#;
        let frame = cffs_obs::json::parse(line).unwrap();
        let mut view = FeedView::new(false);
        view.push(&frame);
        let text = view.render();
        assert!(text.contains("slo_burn=1500m"), "{text}");
    }

    #[test]
    fn view_renders_volume_rows() {
        let line = r#"{"seq":0,"stage":"volume-4v/sessions","t_ns":1000,"counters":{},"ops":30,"queue_depth":0,"histos":{},"signals":{},"cgs":[],"threads":[],"events":[],"dcache_hit_milli":0,"volumes":[{"vol":0,"ops":20,"queue_depth":1,"dreads":7,"dwrites":3,"gf_util_ewma_milli":62500},{"vol":1,"ops":10,"queue_depth":0,"dreads":2,"dwrites":1,"gf_util_ewma_milli":0}]}"#;
        let frame = cffs_obs::json::parse(line).unwrap();
        let mut view = FeedView::new(false);
        view.push(&frame);
        let text = view.render();
        assert!(text.contains("volumes (2)"), "{text}");
        assert!(text.contains("vol0"), "{text}");
        assert!(text.contains("gf-util= 62.5%"), "{text}");
        // vol0 is the busiest → full 16-char bar; vol1 at half → 8.
        assert!(text.contains(&"#".repeat(16)), "{text}");
        let vol1 = text.lines().find(|l| l.contains("vol1")).expect("vol1 row");
        assert!(vol1.trim_end().ends_with(&"#".repeat(8)), "{vol1}");
        assert!(!vol1.contains(&"#".repeat(9)), "{vol1}");
    }
}

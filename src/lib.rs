#![warn(missing_docs)]

//! # cffs — the C-FFS reproduction, in one crate
//!
//! A full reimplementation of *Embedded Inodes and Explicit Grouping:
//! Exploiting Disk Bandwidth for Small Files* (Ganger & Kaashoek, USENIX
//! 1997) on a simulated mid-90s disk. See `README.md` for the tour,
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use cffs::prelude::*;
//!
//! // A C-FFS on the paper's testbed disk (Seagate ST31200).
//! let mut fs = cffs::build::cffs_on_testbed();
//! let root = fs.root();
//! let dir = fs.mkdir(root, "src").unwrap();
//! let ino = fs.create(dir, "hello.c").unwrap();
//! fs.write(ino, 0, b"int main(void) { return 0; }").unwrap();
//! fs.sync().unwrap();
//! println!("simulated time: {}", cffs::disksim::SimDuration::from_nanos(fs.now().as_nanos()));
//! ```

pub mod feedview;

pub use cffs_cache as cache;
pub use cffs_obs as obs;
pub use cffs_core as core;
pub use cffs_disksim as disksim;
pub use cffs_ffs as ffs;
pub use cffs_fslib as fslib;
pub use cffs_regroup as regroup;
pub use cffs_volume as volume;
pub use cffs_workloads as workloads;

/// The traits and types almost every user needs.
pub mod prelude {
    pub use cffs_core::{Cffs, CffsConfig};
    pub use cffs_disksim::{SimDuration, SimTime};
    pub use cffs_ffs::{Ffs, FfsOptions};
    pub use cffs_fslib::{
        path, Attr, DirEntry, FileKind, FileSystem, FsError, FsResult, Ino, MetadataMode, StatFs,
    };
}

/// Convenience constructors for the experiment configurations.
pub mod build {
    use cffs_core::{mkfs as cffs_mkfs, Cffs, CffsConfig};
    use cffs_disksim::{models, Disk, DiskModel};
    use cffs_ffs::{mkfs as ffs_mkfs, Ffs, FfsOptions, MkfsParams as FfsMkfsParams};
    use cffs_fslib::vfs::MetadataMode;
    use cffs_fslib::FileSystem;

    /// A freshly formatted C-FFS (both techniques on) on the paper's
    /// testbed disk.
    pub fn cffs_on_testbed() -> Cffs {
        on_disk(models::seagate_st31200(), CffsConfig::cffs())
    }

    /// A freshly formatted C-FFS variant on the given drive model.
    pub fn on_disk(model: DiskModel, cfg: CffsConfig) -> Cffs {
        cffs_mkfs::mkfs(Disk::new(model), cffs_mkfs::MkfsParams::default(), cfg)
            .expect("mkfs on a fresh simulated disk cannot fail")
    }

    /// A freshly formatted classic FFS on the given drive model.
    pub fn ffs_on_disk(model: DiskModel, opts: FfsOptions) -> Ffs {
        ffs_mkfs::mkfs(Disk::new(model), FfsMkfsParams::default(), opts)
            .expect("mkfs on a fresh simulated disk cannot fail")
    }

    /// The paper's four C-FFS variants in presentation order
    /// (conventional, embedded only, grouping only, C-FFS), each freshly
    /// formatted on its own testbed disk with the given metadata mode.
    pub fn four_variants(mode: MetadataMode) -> Vec<Cffs> {
        [
            CffsConfig::conventional(),
            CffsConfig::embedded_only(),
            CffsConfig::grouping_only(),
            CffsConfig::cffs(),
        ]
        .into_iter()
        .map(|cfg| on_disk(models::seagate_st31200(), cfg.with_mode(mode)))
        .collect()
    }

    /// All five measured file systems (classic FFS + the four variants) as
    /// trait objects, for workloads that iterate uniformly.
    pub fn all_five(mode: MetadataMode) -> Vec<Box<dyn FileSystem>> {
        let mut v: Vec<Box<dyn FileSystem>> = Vec::with_capacity(5);
        v.push(Box::new(ffs_on_disk(
            models::seagate_st31200(),
            FfsOptions { metadata_mode: mode, ..FfsOptions::default() },
        )));
        for fs in four_variants(mode) {
            v.push(Box::new(fs));
        }
        v
    }
}

//! `cffs-inspect` — a debugfs-style examiner for C-FFS disk images.
//!
//! Usage:
//!   cffs-inspect <image>          # inspect a saved image (Disk::save_image)
//!   cffs-inspect --demo [path]    # build a demo image (and optionally save it)
//!   cffs-inspect stats  <image>|--demo            # counter snapshot as JSON
//!   cffs-inspect trace  [--last N] <image>|--demo # trace events as JSONL
//!   cffs-inspect timeline [--last N] <image>|--demo # span-resolved ops as JSONL
//!   cffs-inspect histo  <image>|--demo            # histogram bucket tables
//!   cffs-inspect heatmap [--json] <image>|--demo  # per-CG occupancy/traffic grid
//!   cffs-inspect regroup [--apply] [--json] <image>|--demo # regrouping plan (dry-run by default)
//!   cffs-inspect flamegraph [--fold|--svg-ready] <image>|--demo # collapsed-stack profile
//!   cffs-inspect volumes [--json]                 # demo scale-out volume set, per-volume table
//!
//! Prints the superblock, per-cylinder-group occupancy, the group
//! descriptor table, the namespace tree annotated with each inode's
//! placement (embedded vs external) and its blocks' group membership,
//! and finishes with a full fsck report.
//!
//! `stats` and `trace` mount the image and walk the entire namespace cold
//! (every file's first byte is read), then dump what the observability
//! layer saw: `stats` prints the [`cffs_obs::StatsSnapshot`] of the whole
//! stack (disk, driver, buffer cache, file system) as JSON; `trace`
//! prints the newest `N` (default 64) ring-buffer events as JSONL.
//!
//! `timeline` regroups the trace ring causally: one JSON line per op
//! span, carrying the op kind, open time, latency, and every disk
//! request the op caused (with `queue_ns` = request issue time relative
//! to the span open, and `service_ns` = the request's simulated service
//! time). `histo` renders every non-empty latency/size/seek/utilization
//! histogram as a log2-bucket table with count, mean, and p50/p90/p99.
//!
//! `heatmap` folds the trace ring's disk requests into per-cylinder-group
//! occupancy and traffic buckets — a text grid of where the image is full
//! and hot (`--json` for the machine-readable form). `regroup` scores
//! every directory's grouping quality and prints the relocation plan the
//! online regrouping engine would execute; `--apply` executes it (and
//! writes the image back in place when inspecting a saved image),
//! finishing with an fsck report.
//!
//! `volumes` formats a demo scale-out set (4 striped volumes), replays a
//! small seeded slice of the multi-client session workload against it,
//! and prints one row per volume — ops served, disk reads/writes, queue
//! depth, group-fetch utilization, block occupancy, fsck verdict — plus
//! the set-level stripe registry size (`--json` for the machine-readable
//! form). Single-threaded on a fixed seed, so the output is
//! byte-identical run to run.
//!
//! `flamegraph` folds the cold walk's trace ring into collapsed-stack
//! format (`walk;{op};disk_req/{queue,service}` leaves weighted in
//! simulated nanoseconds, with `idle` covering unattributed time) —
//! pipeable to any flamegraph renderer. `--svg-ready` emits a
//! self-contained SVG icicle chart instead. Total weight always equals
//! the elapsed simulated time, and equal seeds give byte-identical
//! output.

use cffs::core::layout::{decode_ino, InoRef};
use cffs::core::{fsck, Cffs, CffsConfig};
use cffs::prelude::*;
use cffs_disksim::{models, Disk};
use cffs_obs::json::{Json, ToJson};
use cffs_obs::obj;
use std::path::Path;

fn demo_image() -> Disk {
    let mut fs = cffs::build::on_disk(models::tiny_test_disk(), CffsConfig::cffs());
    path::mkdir_p(&mut fs, "/src/include").expect("mkdir");
    for (p, data) in [
        ("/src/main.c", vec![b'm'; 1800]),
        ("/src/util.c", vec![b'u'; 900]),
        ("/src/include/util.h", vec![b'h'; 300]),
        ("/README", vec![b'r'; 450]),
        ("/bigfile.bin", vec![b'B'; 120_000]),
    ] {
        path::write_file(&mut fs, p, &data).expect("write");
    }
    let f = path::resolve(&mut fs, "/src/util.c").expect("resolve");
    fs.link(f, fs.root(), "util-alias.c").expect("link");
    fs.unmount().expect("unmount")
}

fn walk(fs: &mut Cffs, dir: Ino, prefix: &str, out: &mut String) {
    let sb = fs.superblock().clone();
    for e in fs.readdir(dir).expect("readdir") {
        let attr = fs.getattr(e.ino).expect("getattr");
        let placement = match decode_ino(e.ino) {
            InoRef::Embedded { blk, off, gen } => format!("embedded @ block {blk}+{off} gen {gen}"),
            InoRef::External(slot) => format!("external slot {slot}"),
        };
        let grouping = if attr.kind == FileKind::File && attr.size > 0 {
            let mut b = [0u8; 1];
            let _ = fs.read(e.ino, 0, &mut b);
            match fs.cache_block_of(e.ino, 0) {
                Some(blk) => match fs.group_index().group_of_block(&sb, blk) {
                    Some(g) => format!(
                        ", data in group {}/{} [{}..+{}]",
                        g.cg, g.idx, g.start, g.nslots
                    ),
                    None => format!(", data ungrouped @ block {blk}"),
                },
                None => String::new(),
            }
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{prefix}{} {:>8} B  nlink {}  [{placement}{grouping}]\n",
            match attr.kind {
                FileKind::Dir => format!("{}/", e.name),
                FileKind::File => e.name.clone(),
            },
            attr.size,
            attr.nlink,
        ));
        if attr.kind == FileKind::Dir {
            walk(fs, e.ino, &format!("{prefix}  "), out);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: cffs-inspect <image> | --demo [save-path]\n       \
         cffs-inspect stats <image>|--demo\n       \
         cffs-inspect trace [--last N] <image>|--demo\n       \
         cffs-inspect timeline [--last N] <image>|--demo\n       \
         cffs-inspect histo <image>|--demo\n       \
         cffs-inspect heatmap [--json] <image>|--demo\n       \
         cffs-inspect regroup [--apply] [--json] <image>|--demo\n       \
         cffs-inspect flamegraph [--fold|--svg-ready] <image>|--demo\n       \
         cffs-inspect volumes [--json]\n       \
         cffs-inspect postmortem [--json] <FLIGHT_*.jsonl>\n       \
         cffs-inspect diff [--json] <BENCH_A.json> <BENCH_B.json>"
    );
    std::process::exit(2);
}

/// The image argument of a subcommand tail: `--demo` or the first
/// non-flag argument.
fn image_arg(args: &[String]) -> Option<&str> {
    args.iter().map(String::as_str).find(|a| *a == "--demo" || !a.starts_with("--"))
}

fn disk_from(arg: Option<&str>) -> Disk {
    match arg {
        Some("--demo") => demo_image(),
        Some(p) => Disk::load_image(Path::new(p)).expect("load image"),
        None => usage(),
    }
}

/// Mount and walk the whole namespace cold so the counters and trace ring
/// reflect a real traversal of the image.
fn mounted_walk(disk: Disk) -> Cffs {
    let mut fs = Cffs::mount(disk, CffsConfig::cffs()).expect("mount");
    let mut out = String::new();
    let root = fs.root();
    walk(&mut fs, root, "  /", &mut out);
    fs
}

fn stats_cmd(args: &[String]) {
    let fs = mounted_walk(disk_from(args.first().map(String::as_str)));
    let obs = fs.obs();
    let snap = obs.snapshot("cffs-inspect", fs.now().as_nanos());
    let mut j = snap.to_json();
    // The live signal registry (EWMAs, armed thresholds, crossing
    // counts) rides along: the snapshot is cumulative history, the
    // signals are the stack's opinion of *now*.
    if let Json::Obj(m) = &mut j {
        m.push(("signals".to_string(), obs.signals_json()));
    }
    println!("{}", j.to_string_pretty());
}

/// Parse `[--last N] <image>` from a subcommand's argument tail.
fn last_and_image(args: &[String], default_last: usize) -> (usize, Option<&str>) {
    let mut last = default_last;
    let mut image: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--last" {
            last = match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(n) => n,
                None => usage(),
            };
            i += 2;
        } else {
            image = Some(args[i].as_str());
            i += 1;
        }
    }
    (last, image)
}

fn trace_cmd(args: &[String]) {
    let (last, image) = last_and_image(args, 64);
    let fs = mounted_walk(disk_from(image));
    let obs = fs.obs();
    let events = obs.recent_events(last);
    // Same wrap bookkeeping as `timeline`: make it explicit when the
    // ring overwrote older events, so a short listing is never mistaken
    // for the whole history.
    let recorded = obs.events_recorded();
    if recorded > events.len() as u64 {
        println!(
            "{{\"truncated\": true, \"events_recorded\": {recorded}, \"events_shown\": {}}}",
            events.len()
        );
    }
    for e in events {
        println!("{}", e.to_jsonl());
    }
}

/// Span-resolved timeline: regroup the trace ring by causing span and
/// emit one JSONL record per op, newest-window, oldest span first. Disk
/// requests issued outside any span (mount, background writeback) are
/// gathered under a final `"span": 0` record with op `"(none)"`.
fn timeline_cmd(args: &[String]) {
    let (last, image) = last_and_image(args, cffs_obs::DEFAULT_TRACE_CAPACITY);
    let fs = mounted_walk(disk_from(image));
    let obs = fs.obs();
    let events = obs.recent_events(last);
    // Ring-wrap bookkeeping: when the ring (or --last) dropped older
    // events, spans whose open time predates the retained window are
    // flagged `truncated` — their io lists may be missing requests.
    let wrapped = obs.events_recorded() > events.len() as u64;
    let window_start = if wrapped { events.first().map_or(0, |e| e.t_ns) } else { 0 };

    // One op span = one `op.*` close event plus every other event stamped
    // with its id. Spans are ids in allocation order, so BTreeMap keeps
    // the output chronological and deterministic.
    struct SpanRec {
        op: &'static str,
        t_ns: Option<u64>,
        dur_ns: u64,
        io: Vec<Json>,
    }
    let mut spans: std::collections::BTreeMap<u64, SpanRec> = std::collections::BTreeMap::new();
    for e in &events {
        let rec = spans.entry(e.span).or_insert(SpanRec {
            op: if e.span == 0 { "(none)" } else { e.op },
            t_ns: None,
            dur_ns: 0,
            io: Vec::new(),
        });
        if e.tag.starts_with("op.") {
            rec.op = e.op;
            rec.t_ns = Some(e.t_ns);
            rec.dur_ns = e.dur_ns;
        } else {
            rec.io.push(obj![
                ("tag", Json::Str(e.tag.to_string())),
                ("t_ns", Json::Int(e.t_ns as i64)),
                ("lba", Json::Int(e.a as i64)),
                ("b", Json::Int(e.b as i64)),
                ("service_ns", Json::Int(e.dur_ns as i64)),
            ]);
        }
    }
    // Second pass: queue_ns (issue time relative to span open) needs the
    // span's open time, which arrives with the close event *after* its
    // disk requests in ring order.
    for (id, rec) in &mut spans {
        if *id == 0 {
            continue;
        }
        let t0 = rec.t_ns;
        for io in &mut rec.io {
            if let (Json::Obj(m), Some(t0)) = (io, t0) {
                let t = match m.iter().find(|(k, _)| k == "t_ns") {
                    Some((_, Json::Int(t))) => *t as u64,
                    _ => continue,
                };
                m.push(("queue_ns".to_string(), Json::Int(t.saturating_sub(t0) as i64)));
            }
        }
    }
    let (zero, rest): (Vec<_>, Vec<_>) = spans.into_iter().partition(|(id, _)| *id == 0);
    for (id, rec) in rest.into_iter().chain(zero) {
        // Spans whose close event was evicted from the ring keep their io
        // events but lose open time/latency; emit t_ns/dur_ns as null so
        // the record is visibly partial rather than silently wrong.
        // `truncated` also covers closed spans that opened before the
        // retained window (some of their io events were overwritten).
        let truncated =
            id != 0 && (rec.t_ns.is_none() || (wrapped && rec.t_ns.is_some_and(|t| t <= window_start)));
        let line = obj![
            ("span", Json::Int(id as i64)),
            ("op", Json::Str(rec.op.to_string())),
            ("t_ns", rec.t_ns.map_or(Json::Null, |t| Json::Int(t as i64))),
            (
                "dur_ns",
                if rec.t_ns.is_some() { Json::Int(rec.dur_ns as i64) } else { Json::Null }
            ),
            ("truncated", Json::Bool(truncated)),
            ("io", Json::Arr(rec.io)),
        ];
        println!("{line}");
    }
}

/// Collapsed-stack profile of the cold namespace walk. Default (and
/// `--fold`) prints `stack weight` lines — the format every flamegraph
/// renderer consumes; `--svg-ready` renders a self-contained SVG icicle
/// chart. The fold's total weight equals the elapsed simulated
/// nanoseconds: every ns lands in exactly one leaf (op self time, disk
/// queue, disk service, `idle`, or `(evicted)` for time before the
/// retained ring window).
fn flamegraph_cmd(args: &[String]) {
    let svg = args.iter().any(|a| a == "--svg-ready");
    let fs = mounted_walk(disk_from(image_arg(args)));
    let obs = fs.obs();
    let events = obs.recent_events(cffs_obs::DEFAULT_TRACE_CAPACITY);
    let fold =
        cffs_obs::prof::fold_ring(&events, obs.events_recorded(), "walk", fs.now().as_nanos());
    if svg {
        print!("{}", fold.svg());
    } else {
        print!("{}", fold.collapse());
    }
}

/// Histogram bucket tables: every non-empty histogram in the snapshot,
/// with count/mean/p50/p90/p99 and one row per occupied log2 bucket.
fn histo_cmd(args: &[String]) {
    let fs = mounted_walk(disk_from(args.first().map(String::as_str)));
    let snap = fs.obs().snapshot("cffs-inspect", fs.now().as_nanos());
    for (name, h) in &snap.histograms {
        if h.count() == 0 {
            continue;
        }
        println!(
            "{name}: count {}  mean {}  p50 {}  p90 {}  p99 {}",
            h.count(),
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99)
        );
        for (i, &n) in h.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            println!(
                "  [{:>12} .. {:>12}] {:>8}",
                cffs_obs::histo_bucket_lo(i),
                cffs_obs::histo_bucket_hi(i),
                n
            );
        }
        println!();
    }
}

/// Per-cylinder-group occupancy and traffic, folded from the trace ring
/// left behind by the cold namespace walk.
fn heatmap_cmd(args: &[String]) {
    let fs = mounted_walk(disk_from(image_arg(args)));
    let events = fs.obs().recent_events(cffs_obs::DEFAULT_TRACE_CAPACITY);
    let heat = cffs::regroup::heatmap::build(&fs, &events);
    if args.iter().any(|a| a == "--json") {
        println!("{}", cffs::regroup::heatmap::to_json(&heat).to_string_pretty());
    } else {
        print!("{}", cffs::regroup::heatmap::render(&heat));
    }
}

/// Score every directory's grouping quality and print the relocation plan
/// (dry-run); `--apply` executes it through the crash-safe protocol and
/// writes a saved image back in place.
fn regroup_cmd(args: &[String]) {
    let apply = args.iter().any(|a| a == "--apply");
    let json = args.iter().any(|a| a == "--json");
    let image = image_arg(args);
    let mut fs = Cffs::mount(disk_from(image), CffsConfig::cffs()).expect("mount");
    let cfg = cffs::regroup::RegroupConfig::exhaustive();
    let plan = cffs::regroup::plan(&mut fs, &cfg).expect("plan");
    if json {
        println!("{}", plan.to_json().to_string_pretty());
    } else {
        print!("{}", plan.render());
    }
    if !apply {
        println!("(dry run; pass --apply to relocate)");
        return;
    }
    let out = cffs::regroup::execute(&mut fs, &plan, &cfg).expect("execute");
    fs.sync().expect("sync");
    println!(
        "applied: {} blocks moved into {} fresh extents across {} directories \
         ({} stale skips, {} carve failures)",
        out.blocks_moved, out.groups_formed, out.dirs_regrouped, out.skipped_stale, out.carve_failures
    );
    let mut img = fs.unmount().expect("unmount");
    let report = fsck::fsck(&mut img, false).expect("fsck");
    println!(
        "fsck after regroup: {}",
        if report.clean() { "clean" } else { "INCONSISTENT" }
    );
    for e in &report.errors {
        println!("  error: {e}");
    }
    if let Some(p) = image.filter(|p| *p != "--demo") {
        img.save_image(Path::new(p)).expect("save image");
        println!("image updated in place: {p}");
    }
}

/// Demo scale-out volume set: format 4 striped volumes, replay a small
/// seeded slice of the multi-client session workload, and print one row
/// per volume. Single client thread on a fixed seed, so equal
/// invocations give byte-identical output (the determinism contract the
/// other subcommands keep).
fn volumes_cmd(args: &[String]) {
    use cffs::volume::{VolumeCfg, VolumeSet};
    use cffs::workloads::multiclient::{self, MulticlientParams};
    use cffs_obs::{Ctr, Sig};

    let json = args.iter().any(|a| a == "--json");
    const NVOLS: usize = 4;
    let disks: Vec<Disk> =
        (0..NVOLS).map(|_| Disk::new(models::tiny_test_disk())).collect();
    let cfg = VolumeCfg::new(CffsConfig::cffs());
    let stripe_threshold = cfg.stripe_threshold;
    let vs = VolumeSet::format(disks, cfg).expect("format volume set");

    // Small enough to finish in well under a second, big enough that the
    // Zipf-skewed sessions shard directories across every volume and the
    // big-file reads exercise the striped layout.
    let p = MulticlientParams {
        nthreads: 1,
        sessions: 48,
        ndirs: 8,
        files_per_dir: 4,
        ops_per_session: 8,
        seed: 42,
        ..MulticlientParams::default()
    };
    let r = multiclient::run(&vs, &p).expect("multiclient run");
    let fscks = vs.fsck_all().expect("fsck every volume");
    let depths = vs.queue_depths();

    let mut rows = Vec::with_capacity(vs.nvols());
    for (v, obs) in vs.vol_obs().iter().enumerate() {
        let st = vs.statfs_vol(v).expect("statfs");
        rows.push((
            v,
            obs.thread_ops().iter().sum::<u64>(),
            obs.get(Ctr::DiskReads),
            obs.get(Ctr::DiskWrites),
            depths[v],
            obs.signal(Sig::GroupFetchUtil).ewma,
            st.total_blocks - st.free_blocks,
            st.total_blocks,
            fscks[v].clean(),
        ));
    }

    if json {
        let j = obj![
            ("nvols", Json::Int(vs.nvols() as i64)),
            ("stripe_threshold", Json::Int(stripe_threshold as i64)),
            ("stripes", Json::Int(vs.stripe_count() as i64)),
            ("total_ops", Json::Int(r.total_ops() as i64)),
            ("bytes", Json::Int(r.bytes as i64)),
            ("elapsed_ns", Json::Int(r.elapsed.as_nanos() as i64)),
            (
                "volumes",
                Json::Arr(
                    rows.iter()
                        .map(|&(v, ops, dr, dw, qd, gf, used, total, clean)| {
                            obj![
                                ("vol", Json::Int(v as i64)),
                                ("ops", Json::Int(ops as i64)),
                                ("dreads", Json::Int(dr as i64)),
                                ("dwrites", Json::Int(dw as i64)),
                                ("queue_depth", Json::Int(qd as i64)),
                                (
                                    "gf_util_ewma_milli",
                                    Json::Int((gf * 1000.0).round() as i64)
                                ),
                                ("used_blocks", Json::Int(used as i64)),
                                ("total_blocks", Json::Int(total as i64)),
                                ("fsck_clean", Json::Bool(clean)),
                            ]
                        })
                        .collect(),
                )
            ),
        ];
        println!("{}", j.to_string_pretty());
        return;
    }

    println!(
        "volume set: {} volumes, stripe threshold {} KB, {} striped file(s)",
        vs.nvols(),
        stripe_threshold / 1024,
        vs.stripe_count()
    );
    println!(
        "workload: {} sessions x {} ops, {} dirs x {} files, seed {} ({} thread)",
        p.sessions, p.ops_per_session, p.ndirs, p.files_per_dir, p.seed, p.nthreads
    );
    println!("total: {} ops, {} bytes, elapsed {}\n", r.total_ops(), r.bytes, r.elapsed);
    println!(
        "{:<4} {:>8} {:>8} {:>9} {:>7} {:>8} {:>15} {:>6}",
        "vol", "ops", "dreads", "dwrites", "qdepth", "gf-util", "used/total blk", "fsck"
    );
    println!("{}", "-".repeat(74));
    for (v, ops, dr, dw, qd, gf, used, total, clean) in rows {
        println!(
            "{v:<4} {ops:>8} {dr:>8} {dw:>9} {qd:>7} {:>8} {:>15} {:>6}",
            format!("{gf:.1}%"),
            format!("{used}/{total}"),
            if clean { "clean" } else { "DIRTY" },
        );
    }
}

/// `postmortem [--json] <FLIGHT file>`: parse a flight-recorder dump
/// and correlate its captured window into a diagnosis report.
fn postmortem_cmd(args: &[String]) {
    let json_mode = args.iter().any(|a| a == "--json");
    let Some(path) = image_arg(args) else { usage() };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cffs-inspect: read {path}: {e}");
        std::process::exit(2);
    });
    let dump = cffs_obs::flight::parse_flight(&text).unwrap_or_else(|e| {
        eprintln!("cffs-inspect: {path}: {e}");
        std::process::exit(2);
    });
    let report = cffs_obs::flight::postmortem(&dump);
    if json_mode {
        println!("{}", report.to_string_pretty());
    } else {
        print!("{}", cffs_obs::flight::render_postmortem(&report));
    }
}

/// `diff [--json] <A.json> <B.json>`: attribute every moved number
/// between two BENCH payloads (A = baseline/before, B = current/after).
fn diff_cmd(args: &[String]) {
    let json_mode = args.iter().any(|a| a == "--json");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if paths.len() != 2 {
        usage();
    }
    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cffs-inspect: read {path}: {e}");
            std::process::exit(2);
        });
        cffs_obs::json::parse(&text).unwrap_or_else(|e| {
            eprintln!("cffs-inspect: parse {path}: {e:?}");
            std::process::exit(2);
        })
    };
    let (a, b) = (load(paths[0]), load(paths[1]));
    let report = cffs_obs::diff::diff_reports(&a, &b);
    if json_mode {
        println!("{}", report.to_string_pretty());
    } else {
        print!("{}", cffs_obs::diff::render_diff(&report));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("stats") => return stats_cmd(&args[2..]),
        Some("trace") => return trace_cmd(&args[2..]),
        Some("timeline") => return timeline_cmd(&args[2..]),
        Some("histo") => return histo_cmd(&args[2..]),
        Some("heatmap") => return heatmap_cmd(&args[2..]),
        Some("regroup") => return regroup_cmd(&args[2..]),
        Some("flamegraph") => return flamegraph_cmd(&args[2..]),
        Some("volumes") => return volumes_cmd(&args[2..]),
        Some("postmortem") => return postmortem_cmd(&args[2..]),
        Some("diff") => return diff_cmd(&args[2..]),
        _ => {}
    }
    let disk = match args.get(1).map(String::as_str) {
        Some("--demo") => {
            let d = demo_image();
            if let Some(p) = args.get(2) {
                d.save_image(Path::new(p)).expect("save image");
                println!("(demo image saved to {p})\n");
            }
            d
        }
        Some(p) => Disk::load_image(Path::new(p)).expect("load image"),
        None => usage(),
    };

    let mut fs = Cffs::mount(disk, CffsConfig::cffs()).expect("mount");
    let sb = fs.superblock().clone();
    println!("superblock:");
    println!("  total blocks        {}", sb.total_blocks);
    println!("  cylinder groups     {} x {} blocks", sb.cg_count, sb.cg_size);
    println!(
        "  external inode file {} slot(s) in {} block(s)",
        sb.exfile_slots, sb.exfile.blocks
    );
    let st = fs.statfs().expect("statfs");
    println!(
        "  space               {} free / {} total ({} group slack)",
        st.free_blocks, st.total_blocks, st.group_slack_blocks
    );

    println!("\ngroups ({}):", fs.group_index().len());
    let mut groups: Vec<_> = fs.group_index().iter().copied().collect();
    groups.sort_by_key(|g| (g.cg, g.idx));
    for g in groups {
        println!(
            "  {}/{}: blocks {}..+{}  owner {:#x}  members {:016b} ({} live, {} slack)",
            g.cg,
            g.idx,
            g.start,
            g.nslots,
            g.owner,
            g.member_valid,
            g.live(),
            g.slack()
        );
    }

    println!("\nnamespace:");
    let mut out = String::new();
    let root = fs.root();
    walk(&mut fs, root, "  /", &mut out);
    print!("{out}");

    let mut img = fs.unmount().expect("unmount");
    let report = fsck::fsck(&mut img, false).expect("fsck");
    println!(
        "\nfsck: {} ({} files, {} dirs)",
        if report.clean() { "clean" } else { "INCONSISTENT" },
        report.files,
        report.dirs
    );
    for e in &report.errors {
        println!("  error: {e}");
    }
}

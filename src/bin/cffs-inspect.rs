//! `cffs-inspect` — a debugfs-style examiner for C-FFS disk images.
//!
//! Usage:
//!   cffs-inspect <image>          # inspect a saved image (Disk::save_image)
//!   cffs-inspect --demo [path]    # build a demo image (and optionally save it)
//!   cffs-inspect stats  <image>|--demo            # counter snapshot as JSON
//!   cffs-inspect trace  [--last N] <image>|--demo # trace events as JSONL
//!
//! Prints the superblock, per-cylinder-group occupancy, the group
//! descriptor table, the namespace tree annotated with each inode's
//! placement (embedded vs external) and its blocks' group membership,
//! and finishes with a full fsck report.
//!
//! `stats` and `trace` mount the image and walk the entire namespace cold
//! (every file's first byte is read), then dump what the observability
//! layer saw: `stats` prints the [`cffs_obs::StatsSnapshot`] of the whole
//! stack (disk, driver, buffer cache, file system) as JSON; `trace`
//! prints the newest `N` (default 64) ring-buffer events as JSONL.

use cffs::core::layout::{decode_ino, InoRef};
use cffs::core::{fsck, Cffs, CffsConfig};
use cffs::prelude::*;
use cffs_disksim::{models, Disk};
use cffs_obs::json::ToJson;
use std::path::Path;

fn demo_image() -> Disk {
    let mut fs = cffs::build::on_disk(models::tiny_test_disk(), CffsConfig::cffs());
    path::mkdir_p(&mut fs, "/src/include").expect("mkdir");
    for (p, data) in [
        ("/src/main.c", vec![b'm'; 1800]),
        ("/src/util.c", vec![b'u'; 900]),
        ("/src/include/util.h", vec![b'h'; 300]),
        ("/README", vec![b'r'; 450]),
        ("/bigfile.bin", vec![b'B'; 120_000]),
    ] {
        path::write_file(&mut fs, p, &data).expect("write");
    }
    let f = path::resolve(&mut fs, "/src/util.c").expect("resolve");
    fs.link(f, fs.root(), "util-alias.c").expect("link");
    fs.unmount().expect("unmount")
}

fn walk(fs: &mut Cffs, dir: Ino, prefix: &str, out: &mut String) {
    let sb = fs.superblock().clone();
    for e in fs.readdir(dir).expect("readdir") {
        let attr = fs.getattr(e.ino).expect("getattr");
        let placement = match decode_ino(e.ino) {
            InoRef::Embedded { blk, off, gen } => format!("embedded @ block {blk}+{off} gen {gen}"),
            InoRef::External(slot) => format!("external slot {slot}"),
        };
        let grouping = if attr.kind == FileKind::File && attr.size > 0 {
            let mut b = [0u8; 1];
            let _ = fs.read(e.ino, 0, &mut b);
            match fs.cache_block_of(e.ino, 0) {
                Some(blk) => match fs.group_index().group_of_block(&sb, blk) {
                    Some(g) => format!(
                        ", data in group {}/{} [{}..+{}]",
                        g.cg, g.idx, g.start, g.nslots
                    ),
                    None => format!(", data ungrouped @ block {blk}"),
                },
                None => String::new(),
            }
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{prefix}{} {:>8} B  nlink {}  [{placement}{grouping}]\n",
            match attr.kind {
                FileKind::Dir => format!("{}/", e.name),
                FileKind::File => e.name.clone(),
            },
            attr.size,
            attr.nlink,
        ));
        if attr.kind == FileKind::Dir {
            walk(fs, e.ino, &format!("{prefix}  "), out);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: cffs-inspect <image> | --demo [save-path]\n       \
         cffs-inspect stats <image>|--demo\n       \
         cffs-inspect trace [--last N] <image>|--demo"
    );
    std::process::exit(2);
}

fn disk_from(arg: Option<&str>) -> Disk {
    match arg {
        Some("--demo") => demo_image(),
        Some(p) => Disk::load_image(Path::new(p)).expect("load image"),
        None => usage(),
    }
}

/// Mount and walk the whole namespace cold so the counters and trace ring
/// reflect a real traversal of the image.
fn mounted_walk(disk: Disk) -> Cffs {
    let mut fs = Cffs::mount(disk, CffsConfig::cffs()).expect("mount");
    let mut out = String::new();
    let root = fs.root();
    walk(&mut fs, root, "  /", &mut out);
    fs
}

fn stats_cmd(args: &[String]) {
    let fs = mounted_walk(disk_from(args.first().map(String::as_str)));
    let snap = fs.obs().snapshot("cffs-inspect", fs.now().as_nanos());
    println!("{}", snap.to_json().to_string_pretty());
}

fn trace_cmd(args: &[String]) {
    let mut last = 64usize;
    let mut image: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--last" {
            last = match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(n) => n,
                None => usage(),
            };
            i += 2;
        } else {
            image = Some(args[i].as_str());
            i += 1;
        }
    }
    let fs = mounted_walk(disk_from(image));
    for e in fs.obs().recent_events(last) {
        println!("{}", e.to_jsonl());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("stats") => return stats_cmd(&args[2..]),
        Some("trace") => return trace_cmd(&args[2..]),
        _ => {}
    }
    let disk = match args.get(1).map(String::as_str) {
        Some("--demo") => {
            let d = demo_image();
            if let Some(p) = args.get(2) {
                d.save_image(Path::new(p)).expect("save image");
                println!("(demo image saved to {p})\n");
            }
            d
        }
        Some(p) => Disk::load_image(Path::new(p)).expect("load image"),
        None => usage(),
    };

    let mut fs = Cffs::mount(disk, CffsConfig::cffs()).expect("mount");
    let sb = fs.superblock().clone();
    println!("superblock:");
    println!("  total blocks        {}", sb.total_blocks);
    println!("  cylinder groups     {} x {} blocks", sb.cg_count, sb.cg_size);
    println!(
        "  external inode file {} slot(s) in {} block(s)",
        sb.exfile_slots, sb.exfile.blocks
    );
    let st = fs.statfs().expect("statfs");
    println!(
        "  space               {} free / {} total ({} group slack)",
        st.free_blocks, st.total_blocks, st.group_slack_blocks
    );

    println!("\ngroups ({}):", fs.group_index().len());
    let mut groups: Vec<_> = fs.group_index().iter().copied().collect();
    groups.sort_by_key(|g| (g.cg, g.idx));
    for g in groups {
        println!(
            "  {}/{}: blocks {}..+{}  owner {:#x}  members {:016b} ({} live, {} slack)",
            g.cg,
            g.idx,
            g.start,
            g.nslots,
            g.owner,
            g.member_valid,
            g.live(),
            g.slack()
        );
    }

    println!("\nnamespace:");
    let mut out = String::new();
    let root = fs.root();
    walk(&mut fs, root, "  /", &mut out);
    print!("{out}");

    let mut img = fs.unmount().expect("unmount");
    let report = fsck::fsck(&mut img, false).expect("fsck");
    println!(
        "\nfsck: {} ({} files, {} dirs)",
        if report.clean() { "clean" } else { "INCONSISTENT" },
        report.files,
        report.dirs
    );
    for e in &report.errors {
        println!("  error: {e}");
    }
}

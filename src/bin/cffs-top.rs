//! `cffs-top` — a terminal dashboard for the live telemetry feed.
//!
//! Usage:
//!   cffs-top --follow <feed.jsonl> [--interval-ms N] [--headless] [--frames N] [--no-color]
//!   cffs-top --replay <feed.jsonl> [--interval-ms N] [--headless] [--frames N] [--no-color]
//!
//! `--follow` tails a feed file a repro binary is writing (start one
//! with `--feed <path>`, e.g. `repro_aging_regroup --feed /tmp/feed.jsonl`)
//! and redraws the dashboard as frames land. The feed's atomic-rewrite
//! discipline means a poll always reads a complete prefix of frames.
//!
//! `--replay` steps through a recorded feed frame by frame — the
//! flight-recorder view of a finished run. Replaying a seeded
//! single-threaded run renders byte-identically across machines (with
//! `--headless`, which disables ANSI styling and screen clears).
//!
//! `--headless` prints each frame's dashboard as plain text separated by
//! `---` lines and finishes with a `rendered N frames` trailer; the ci.sh
//! smoke and the determinism tests drive this mode. `--frames N` stops
//! after N frames (both modes). `--interval-ms` sets the replay step
//! delay / follow poll period (default 200; ignored when headless
//! replaying).

use cffs::obs::feed;
use cffs::obs::json::Json;
use cffs::feedview::FeedView;

fn usage() -> ! {
    eprintln!(
        "usage: cffs-top (--follow|--replay) <feed.jsonl> \
         [--interval-ms N] [--headless] [--frames N] [--no-color]"
    );
    std::process::exit(2);
}

/// Value of `--<name> <v>` in `args`, if present.
fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let follow = arg(&args, "--follow");
    let replay = arg(&args, "--replay");
    let headless = args.iter().any(|a| a == "--headless");
    let color = !headless && !args.iter().any(|a| a == "--no-color");
    let max_frames: Option<u64> = arg(&args, "--frames").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("cffs-top: --frames wants a number, got {v:?}");
            std::process::exit(2);
        })
    });
    let interval = std::time::Duration::from_millis(
        arg(&args, "--interval-ms").and_then(|v| v.parse().ok()).unwrap_or(200),
    );
    let (path, live) = match (follow, replay) {
        (Some(p), None) => (p, true),
        (None, Some(p)) => (p, false),
        _ => usage(),
    };

    let mut view = FeedView::new(color);
    let mut shown = 0u64;
    let show = |view: &FeedView| {
        if headless {
            emit(&format!("{}---\n", view.render()));
        } else {
            // Clear screen + home, then the dashboard.
            emit(&format!("\x1b[2J\x1b[H{}", view.render()));
        }
    };

    if !live {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cffs-top: cannot read {path}: {e}");
            std::process::exit(1);
        });
        let frames = parse_or_die(&text, &path);
        for frame in &frames {
            if max_frames.is_some_and(|m| shown >= m) {
                break;
            }
            view.push(frame);
            shown += 1;
            show(&view);
            if !headless {
                std::thread::sleep(interval);
            }
        }
    } else {
        // Tail the file: atomic rewrites mean every poll sees a complete
        // prefix, so rendering resumes exactly where the last poll ended.
        let mut seen = 0usize;
        loop {
            if max_frames.is_some_and(|m| shown >= m) {
                break;
            }
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cffs-top: cannot read {path}: {e}");
                std::process::exit(1);
            });
            let frames = parse_or_die(&text, &path);
            let mut progressed = false;
            for frame in frames.iter().skip(seen) {
                if max_frames.is_some_and(|m| shown >= m) {
                    break;
                }
                view.push(frame);
                shown += 1;
                progressed = true;
                if headless {
                    show(&view);
                }
            }
            seen = view.frames_seen() as usize;
            if !headless && progressed {
                show(&view);
            }
            std::thread::sleep(interval);
        }
    }
    if headless {
        emit(&format!("rendered {shown} frames\n"));
    }
}

/// Write to stdout, exiting quietly when the reader is gone (a replay
/// piped into `head` must not panic on the broken pipe).
fn emit(s: &str) {
    use std::io::Write as _;
    let mut out = std::io::stdout();
    if out.write_all(s.as_bytes()).and_then(|()| out.flush()).is_err() {
        std::process::exit(0);
    }
}

fn parse_or_die(text: &str, path: &str) -> Vec<Json> {
    feed::parse_feed(text).unwrap_or_else(|e| {
        eprintln!("cffs-top: {path}: {e}");
        std::process::exit(1);
    })
}
